//! The benchmark catalog — the synthetic stand-ins for the paper's Table I.
//!
//! Each entry models the *characteristics that decide SMT preference* of one
//! benchmark from the paper's suites (NAS, PARSEC, SPEC OMP2001, SSCA2,
//! STREAM, SPECjbb2005, SPECjbb-contention, DayTrader): instruction mix,
//! ILP, cache footprint and access pattern, branch behaviour, and
//! synchronization/scalability. The parameters are informed by the paper's
//! own descriptions (Table I's "lock heavy", "heavy I/O", Fig. 7's mixes,
//! Section IV's discussion of Streamcluster's 40% loads) plus the public
//! characterizations of these suites. The *speedups are not scripted*: they
//! emerge from running these specs on the simulator.
//!
//! `total_work` values are sized so a full run takes a few hundred thousand
//! simulated cycles on the 8-core POWER7-like machine; use
//! [`WorkloadSpec::scaled`] for quicker tests or longer steady-state runs.

use crate::spec::{AccessPattern, DepProfile, InstrMix, MemBehavior, SyncSpec, WorkloadSpec};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

fn entry(name: &str, suite: &str, description: &str, work: u64, seed: u64) -> WorkloadSpec {
    let mut s = WorkloadSpec::new(name, work);
    s.suite = suite.into();
    s.description = description.into();
    s.seed = seed;
    s
}

// --------------------------------------------------------------------------
// NAS Parallel Benchmarks
// --------------------------------------------------------------------------

/// IS — Integer Sort (bucket sort). Integer and memory heavy with random
/// access; memory latency bound, so extra hardware threads hide misses well.
pub fn is_nas() -> WorkloadSpec {
    let mut s = entry(
        "IS",
        "NAS",
        "Integer Sort: bucket sort for integers",
        2_500_000,
        101,
    );
    s.mix = InstrMix {
        load: 0.30,
        store: 0.16,
        branch: 0.10,
        cond_reg: 0.02,
        fixed: 0.40,
        vector: 0.02,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.85,
        max_dist: 8,
    };
    s.mem = MemBehavior::private(8 * MB, AccessPattern::Random).with_locality(0.92);
    s.branch_mispredict_rate = 0.010;
    s
}

/// IS, MPI flavor: same kernel, message buffers add stores and a few
/// barriers.
pub fn is_mpi() -> WorkloadSpec {
    let mut s = is_nas();
    s.name = "IS_MPI".into();
    s.sync = SyncSpec::Barrier {
        interval: 40_000,
        imbalance: 0.10,
    };
    s.seed = 102;
    s
}

/// BT — Block-Tridiagonal PDE solver: dense FP with decent ILP.
pub fn bt() -> WorkloadSpec {
    let mut s = entry(
        "BT",
        "NAS",
        "Block Tridiagonal: solves nonlinear PDEs",
        4_000_000,
        103,
    );
    s.mix = InstrMix {
        load: 0.22,
        store: 0.12,
        branch: 0.06,
        cond_reg: 0.01,
        fixed: 0.19,
        vector: 0.40,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 6,
    };
    s.mem = MemBehavior::private(256 * KB, AccessPattern::Strided(8)).with_locality(0.81);
    s.branch_mispredict_rate = 0.004;
    s.sync = SyncSpec::Barrier {
        interval: 60_000,
        imbalance: 0.05,
    };
    s
}

/// LU — SSOR PDE solver: FP with longer dependency chains (the wavefront
/// recurrence), which SMT fills nicely.
pub fn lu_mpi() -> WorkloadSpec {
    let mut s = entry(
        "LU_MPI",
        "NAS",
        "Lower-Upper: SSOR solver for nonlinear PDEs",
        3_500_000,
        104,
    );
    s.mix = InstrMix {
        load: 0.24,
        store: 0.10,
        branch: 0.07,
        cond_reg: 0.01,
        fixed: 0.15,
        vector: 0.43,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.92,
        max_dist: 3,
    };
    s.mem = MemBehavior::private(128 * KB, AccessPattern::Strided(8)).with_locality(0.86);
    s.branch_mispredict_rate = 0.004;
    s
}

/// CG — Conjugate Gradient: sparse matrix-vector products, indirect loads,
/// memory-latency bound.
pub fn cg_mpi() -> WorkloadSpec {
    let mut s = entry(
        "CG_MPI",
        "NAS",
        "Conjugate Gradient: eigenvalues of sparse matrices",
        2_500_000,
        105,
    );
    s.mix = InstrMix {
        load: 0.34,
        store: 0.08,
        branch: 0.10,
        cond_reg: 0.01,
        fixed: 0.15,
        vector: 0.32,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 4,
    };
    s.mem = MemBehavior::private(4 * MB, AccessPattern::Random).with_locality(0.90);
    s.branch_mispredict_rate = 0.006;
    s
}

/// FT — 3D FFT: vector heavy with large strided (transpose) traffic.
pub fn ft_mpi() -> WorkloadSpec {
    let mut s = entry("FT_MPI", "NAS", "Fast Fourier Transform", 3_500_000, 106);
    s.mix = InstrMix {
        load: 0.25,
        store: 0.14,
        branch: 0.06,
        cond_reg: 0.01,
        fixed: 0.09,
        vector: 0.45,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.88,
        max_dist: 6,
    };
    s.mem = MemBehavior::private(2 * MB, AccessPattern::Strided(64)).with_locality(0.93);
    s.branch_mispredict_rate = 0.003;
    s
}

/// MG — Multigrid Poisson solver: mixed FP/memory; the paper's Fig. 1 shows
/// it nearly oblivious to the SMT level.
pub fn mg() -> WorkloadSpec {
    let mut s = entry(
        "MG",
        "NAS",
        "MultiGrid: 3-D discrete Poisson equation",
        3_000_000,
        107,
    );
    s.mix = InstrMix {
        load: 0.28,
        store: 0.13,
        branch: 0.06,
        cond_reg: 0.01,
        fixed: 0.16,
        vector: 0.36,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.88,
        max_dist: 6,
    };
    s.mem = MemBehavior::private(3 * MB, AccessPattern::Strided(64)).with_locality(0.93);
    s.branch_mispredict_rate = 0.004;
    s
}

/// MG, MPI flavor.
pub fn mg_mpi() -> WorkloadSpec {
    let mut s = mg();
    s.name = "MG_MPI".into();
    s.sync = SyncSpec::Barrier {
        interval: 50_000,
        imbalance: 0.08,
    };
    s.seed = 108;
    s
}

/// EP — Embarrassingly Parallel random-number generation: small footprint,
/// moderate chains, diverse compute mix; the paper's SMT4 poster child.
pub fn ep() -> WorkloadSpec {
    let mut s = entry(
        "EP",
        "NAS",
        "Embarrassingly Parallel: pseudo-random numbers",
        5_000_000,
        109,
    );
    s.mix = InstrMix {
        load: 0.13,
        store: 0.07,
        branch: 0.12,
        cond_reg: 0.03,
        fixed: 0.33,
        vector: 0.32,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 8,
    };
    s.mem = MemBehavior::cache_resident();
    s.branch_mispredict_rate = 0.006;
    s
}

/// EP, MPI flavor.
pub fn ep_mpi() -> WorkloadSpec {
    let mut s = ep();
    s.name = "EP_MPI".into();
    s.seed = 110;
    s
}

/// SP — Scalar Pentadiagonal solver (used in the Nehalem suite).
pub fn sp() -> WorkloadSpec {
    let mut s = entry(
        "SP",
        "NAS",
        "Scalar Pentadiagonal PDE solver",
        3_500_000,
        111,
    );
    s.mix = InstrMix {
        load: 0.23,
        store: 0.12,
        branch: 0.06,
        cond_reg: 0.01,
        fixed: 0.17,
        vector: 0.41,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(512 * KB, AccessPattern::Strided(8)).with_locality(0.82);
    s.branch_mispredict_rate = 0.004;
    s
}

/// UA — Unstructured Adaptive mesh: irregular memory access (Nehalem suite).
pub fn ua() -> WorkloadSpec {
    let mut s = entry(
        "UA",
        "NAS",
        "Unstructured Adaptive mesh refinement",
        2_500_000,
        112,
    );
    s.mix = InstrMix {
        load: 0.30,
        store: 0.10,
        branch: 0.09,
        cond_reg: 0.01,
        fixed: 0.18,
        vector: 0.32,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 4,
    };
    s.mem = MemBehavior::private(2 * MB, AccessPattern::Random).with_locality(0.925);
    s.branch_mispredict_rate = 0.010;
    s
}

// --------------------------------------------------------------------------
// PARSEC
// --------------------------------------------------------------------------

/// Blackscholes — option pricing: pure FP compute on a tiny working set with
/// tight dependency chains; the biggest SMT4 winner in Fig. 7 (1.82x).
pub fn blackscholes() -> WorkloadSpec {
    let mut s = entry(
        "Blackscholes",
        "Parsec",
        "Computes option prices",
        4_500_000,
        201,
    );
    s.mix = InstrMix {
        load: 0.17,
        store: 0.07,
        branch: 0.09,
        cond_reg: 0.02,
        fixed: 0.21,
        vector: 0.44,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.95,
        max_dist: 3,
    };
    s.mem = MemBehavior::cache_resident();
    s.branch_mispredict_rate = 0.003;
    s
}

/// Blackscholes, pthreads build (Nehalem suite label).
pub fn blackscholes_pthreads() -> WorkloadSpec {
    let mut s = blackscholes();
    s.name = "blackscholes_pthreads".into();
    s.seed = 202;
    s
}

/// Bodytrack — person tracking: mixed compute with periodic barriers.
pub fn bodytrack() -> WorkloadSpec {
    let mut s = entry(
        "bodytrack",
        "Parsec",
        "Motion tracking of a person",
        3_000_000,
        203,
    );
    s.mix = InstrMix {
        load: 0.22,
        store: 0.09,
        branch: 0.11,
        cond_reg: 0.02,
        fixed: 0.26,
        vector: 0.30,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(512 * KB, AccessPattern::Strided(8)).with_locality(0.87);
    s.branch_mispredict_rate = 0.012;
    s.sync = SyncSpec::Barrier {
        interval: 30_000,
        imbalance: 0.15,
    };
    s
}

/// Bodytrack, pthreads build.
pub fn bodytrack_pthreads() -> WorkloadSpec {
    let mut s = bodytrack();
    s.name = "bodytrack_pthreads".into();
    s.seed = 204;
    // The pthreads build synchronizes more finely than the OpenMP one.
    s.sync = SyncSpec::Barrier {
        interval: 6_000,
        imbalance: 0.35,
    };
    s
}

/// Canneal — cache-aware simulated annealing: pointer chasing over a huge
/// shared netlist (Nehalem suite).
pub fn canneal() -> WorkloadSpec {
    let mut s = entry(
        "canneal",
        "Parsec",
        "Cache-aware simulated annealing",
        1_500_000,
        205,
    );
    s.mix = InstrMix {
        load: 0.35,
        store: 0.10,
        branch: 0.12,
        cond_reg: 0.02,
        fixed: 0.37,
        vector: 0.04,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.95,
        max_dist: 2,
    };
    s.mem = MemBehavior::private(256 * KB, AccessPattern::Random)
        .with_shared(24 * MB, 0.7, 0.3)
        .with_locality(0.86);
    s.branch_mispredict_rate = 0.015;
    s.sync = SyncSpec::SpinLock {
        cs_interval: 380,
        cs_len: 8,
    };
    s
}

/// Dedup — pipelined compression/deduplication, heavy I/O and queue locks.
pub fn dedup() -> WorkloadSpec {
    let mut s = entry(
        "Dedup",
        "Parsec",
        "Compression and deduplication; heavy I/O",
        2_000_000,
        206,
    );
    s.mix = InstrMix {
        load: 0.26,
        store: 0.14,
        branch: 0.13,
        cond_reg: 0.02,
        fixed: 0.40,
        vector: 0.05,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(2 * MB, AccessPattern::Strided(8)).with_locality(0.95);
    s.branch_mispredict_rate = 0.012;
    s.sync = SyncSpec::BlockingLock {
        cs_interval: 1_900,
        cs_len: 40,
        wake_latency: 40,
    };
    s
}

/// Facesim — facial simulation: FP heavy with barriers (Nehalem suite).
pub fn facesim() -> WorkloadSpec {
    let mut s = entry(
        "facesim",
        "Parsec",
        "Simulates human facial motion",
        3_000_000,
        207,
    );
    s.mix = InstrMix {
        load: 0.22,
        store: 0.10,
        branch: 0.05,
        cond_reg: 0.01,
        fixed: 0.14,
        vector: 0.48,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(MB, AccessPattern::Strided(8)).with_locality(0.80);
    s.branch_mispredict_rate = 0.004;
    s.sync = SyncSpec::Barrier {
        interval: 40_000,
        imbalance: 0.10,
    };
    s
}

/// Ferret — content-similarity pipeline: mixed stages with moderate locks
/// (Nehalem suite).
pub fn ferret() -> WorkloadSpec {
    let mut s = entry(
        "ferret",
        "Parsec",
        "Content similarity search pipeline",
        2_500_000,
        208,
    );
    s.mix = InstrMix {
        load: 0.26,
        store: 0.09,
        branch: 0.11,
        cond_reg: 0.02,
        fixed: 0.27,
        vector: 0.25,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(MB, AccessPattern::Random).with_locality(0.96);
    s.branch_mispredict_rate = 0.010;
    s.sync = SyncSpec::BlockingLock {
        cs_interval: 500,
        cs_len: 20,
        wake_latency: 30,
    };
    s.code_footprint = 96 * KB;
    s
}

/// Fluidanimate — SPH fluid dynamics: FP with fine-grained spin locks on
/// cell lists; still a clear SMT4 winner (1.35x in Fig. 7).
pub fn fluidanimate() -> WorkloadSpec {
    let mut s = entry(
        "Fluidanimate",
        "Parsec",
        "Fluid dynamics (SPH) with fine-grain locks",
        3_500_000,
        209,
    );
    s.mix = InstrMix {
        load: 0.23,
        store: 0.10,
        branch: 0.09,
        cond_reg: 0.02,
        fixed: 0.16,
        vector: 0.40,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(512 * KB, AccessPattern::Strided(8)).with_locality(0.85);
    s.branch_mispredict_rate = 0.006;
    s.sync = SyncSpec::SpinLock {
        cs_interval: 3_500,
        cs_len: 6,
    };
    s
}

/// Freqmine — frequent itemset mining: integer/memory heavy (Nehalem suite).
pub fn freqmine() -> WorkloadSpec {
    let mut s = entry(
        "freqmine",
        "Parsec",
        "Frequent itemset mining",
        2_500_000,
        210,
    );
    s.mix = InstrMix {
        load: 0.30,
        store: 0.09,
        branch: 0.13,
        cond_reg: 0.02,
        fixed: 0.42,
        vector: 0.04,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 4,
    };
    s.mem = MemBehavior::private(6 * MB, AccessPattern::Random).with_locality(0.91);
    s.branch_mispredict_rate = 0.014;
    s
}

/// Raytrace — ray tracing: FP with branchy traversal (Nehalem suite).
pub fn raytrace() -> WorkloadSpec {
    let mut s = entry("raytrace", "Parsec", "Real-time raytracing", 3_000_000, 211);
    s.mix = InstrMix {
        load: 0.24,
        store: 0.06,
        branch: 0.14,
        cond_reg: 0.02,
        fixed: 0.16,
        vector: 0.38,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 4,
    };
    s.mem = MemBehavior::private(2 * MB, AccessPattern::Random).with_locality(0.96);
    s.branch_mispredict_rate = 0.020;
    s
}

/// Streamcluster — online clustering. The paper singles it out: ~40% loads
/// with few stores. On the POWER7-like chip its shared points fit in L3, so
/// it is load-port bound (prefers low SMT); on the Nehalem-like chip the
/// same footprint misses in the smaller L3, so SMT actually helps — the
/// Fig. 10 outlier.
pub fn streamcluster() -> WorkloadSpec {
    let mut s = entry(
        "Streamcluster",
        "Parsec",
        "Online data clustering; 40% loads",
        2_000_000,
        212,
    );
    s.mix = InstrMix {
        load: 0.40,
        store: 0.04,
        branch: 0.13,
        cond_reg: 0.01,
        fixed: 0.16,
        vector: 0.26,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.55,
        max_dist: 12,
    };
    s.mem = MemBehavior::private(64 * KB, AccessPattern::Strided(8))
        .with_shared(12 * MB, 0.85, 0.3)
        .with_locality(0.97);
    s.branch_mispredict_rate = 0.008;
    s
}

/// Swaptions — Monte-Carlo swaption pricing: scalable FP compute
/// (Nehalem suite).
pub fn swaptions() -> WorkloadSpec {
    let mut s = entry(
        "swaptions",
        "Parsec",
        "Monte-Carlo pricing of swaptions",
        4_000_000,
        213,
    );
    s.mix = InstrMix {
        load: 0.15,
        store: 0.06,
        branch: 0.09,
        cond_reg: 0.02,
        fixed: 0.18,
        vector: 0.50,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.92,
        max_dist: 4,
    };
    s.mem = MemBehavior::cache_resident();
    s.branch_mispredict_rate = 0.005;
    s
}

/// Vips — image processing pipeline: mixed compute (Nehalem suite).
pub fn vips() -> WorkloadSpec {
    let mut s = entry(
        "vips",
        "Parsec",
        "Image processing pipeline",
        3_000_000,
        214,
    );
    s.mix = InstrMix {
        load: 0.24,
        store: 0.12,
        branch: 0.10,
        cond_reg: 0.02,
        fixed: 0.27,
        vector: 0.25,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 6,
    };
    s.mem = MemBehavior::private(MB, AccessPattern::Strided(64)).with_locality(0.972);
    s.branch_mispredict_rate = 0.008;
    s
}

/// x264 — video encoding: integer/SIMD with branchy mode decisions
/// (Nehalem suite).
pub fn x264() -> WorkloadSpec {
    let mut s = entry("x264", "Parsec", "H.264 video encoding", 3_000_000, 215);
    s.mix = InstrMix {
        load: 0.24,
        store: 0.10,
        branch: 0.13,
        cond_reg: 0.02,
        fixed: 0.28,
        vector: 0.23,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(MB, AccessPattern::Strided(8)).with_locality(0.72);
    s.branch_mispredict_rate = 0.018;
    s
}

// --------------------------------------------------------------------------
// SPEC OMP2001
// --------------------------------------------------------------------------

/// Ammp — molecular dynamics: FP with irregular neighbor lists.
pub fn ammp() -> WorkloadSpec {
    let mut s = entry("Ammp", "SPEC OMP2001", "Molecular dynamics", 2_500_000, 301);
    s.mix = InstrMix {
        load: 0.24,
        store: 0.07,
        branch: 0.06,
        cond_reg: 0.01,
        fixed: 0.09,
        vector: 0.53,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(2 * MB, AccessPattern::Random).with_locality(0.92);
    s.branch_mispredict_rate = 0.008;
    s
}

/// Applu — parabolic/elliptic PDEs: FP with large strided sweeps.
pub fn applu() -> WorkloadSpec {
    let mut s = entry(
        "Applu",
        "SPEC OMP2001",
        "Parabolic/elliptic PDE solver",
        2_200_000,
        302,
    );
    s.mix = InstrMix {
        load: 0.24,
        store: 0.09,
        branch: 0.04,
        cond_reg: 0.01,
        fixed: 0.07,
        vector: 0.55,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.88,
        max_dist: 6,
    };
    s.mem = MemBehavior::private(8 * MB, AccessPattern::Strided(64)).with_locality(0.855);
    s.branch_mispredict_rate = 0.003;
    s
}

/// Apsi — lake weather modeling: FP, moderate footprint.
pub fn apsi() -> WorkloadSpec {
    let mut s = entry(
        "Apsi",
        "SPEC OMP2001",
        "Lake weather modeling",
        2_500_000,
        303,
    );
    s.mix = InstrMix {
        load: 0.22,
        store: 0.09,
        branch: 0.06,
        cond_reg: 0.01,
        fixed: 0.10,
        vector: 0.52,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(MB, AccessPattern::Strided(8)).with_locality(0.74);
    s.branch_mispredict_rate = 0.005;
    s
}

/// Equake — earthquake simulation: sparse FP over a large footprint; Fig. 1
/// shows SMT4 *degrading* it badly.
pub fn equake() -> WorkloadSpec {
    let mut s = entry(
        "Equake",
        "SPEC OMP2001",
        "Earthquake simulation (sparse FP)",
        1_800_000,
        304,
    );
    s.mix = InstrMix {
        load: 0.26,
        store: 0.08,
        branch: 0.05,
        cond_reg: 0.01,
        fixed: 0.08,
        vector: 0.52,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.85,
        max_dist: 10,
    };
    s.mem = MemBehavior::private(4 * MB, AccessPattern::Strided(64)).with_locality(0.91);
    s.branch_mispredict_rate = 0.004;
    s.sync = SyncSpec::AmdahlSerial {
        serial_fraction: 0.15,
        chunk: 4_000,
    };
    s
}

/// Fma3d — finite-element crash simulation: FP with imbalanced elements.
pub fn fma3d() -> WorkloadSpec {
    let mut s = entry(
        "Fma3d",
        "SPEC OMP2001",
        "Finite element crash simulation",
        2_500_000,
        305,
    );
    s.mix = InstrMix {
        load: 0.23,
        store: 0.09,
        branch: 0.07,
        cond_reg: 0.01,
        fixed: 0.11,
        vector: 0.49,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(2 * MB, AccessPattern::Strided(8)).with_locality(0.70);
    s.branch_mispredict_rate = 0.007;
    s.sync = SyncSpec::Barrier {
        interval: 25_000,
        imbalance: 0.25,
    };
    s
}

/// Gafort — genetic algorithm: integer/branch heavy with lock-protected
/// shuffles.
pub fn gafort() -> WorkloadSpec {
    let mut s = entry(
        "Gafort",
        "SPEC OMP2001",
        "Genetic algorithm",
        2_200_000,
        306,
    );
    s.mix = InstrMix {
        load: 0.25,
        store: 0.12,
        branch: 0.15,
        cond_reg: 0.03,
        fixed: 0.36,
        vector: 0.09,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 4,
    };
    s.mem = MemBehavior::private(MB, AccessPattern::Random).with_locality(0.95);
    s.branch_mispredict_rate = 0.015;
    s.sync = SyncSpec::SpinLock {
        cs_interval: 900,
        cs_len: 12,
    };
    s
}

/// Mgrid — multigrid solver: bandwidth-hungry stencil sweeps.
pub fn mgrid() -> WorkloadSpec {
    let mut s = entry(
        "Mgrid",
        "SPEC OMP2001",
        "Multigrid differential equation solver",
        1_800_000,
        307,
    );
    s.mix = InstrMix {
        load: 0.28,
        store: 0.11,
        branch: 0.04,
        cond_reg: 0.01,
        fixed: 0.06,
        vector: 0.50,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.88,
        max_dist: 6,
    };
    s.mem = MemBehavior::private(12 * MB, AccessPattern::Strided(64)).with_locality(0.845);
    s.branch_mispredict_rate = 0.003;
    s
}

/// Swim — shallow-water modeling: the classic bandwidth burner.
pub fn swim() -> WorkloadSpec {
    let mut s = entry(
        "Swim",
        "SPEC OMP2001",
        "Shallow water modeling (bandwidth bound)",
        1_500_000,
        308,
    );
    s.mix = InstrMix {
        load: 0.31,
        store: 0.16,
        branch: 0.03,
        cond_reg: 0.0,
        fixed: 0.05,
        vector: 0.45,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.80,
        max_dist: 10,
    };
    s.mem = MemBehavior::private(24 * MB, AccessPattern::Strided(64)).with_locality(0.85);
    s.branch_mispredict_rate = 0.002;
    s.sync = SyncSpec::AmdahlSerial {
        serial_fraction: 0.06,
        chunk: 3_000,
    };
    s
}

/// Wupwise — quantum chromodynamics: FP compute with small footprint and
/// chains; one of the SPEC OMP codes that does gain from SMT.
pub fn wupwise() -> WorkloadSpec {
    let mut s = entry(
        "Wupwise",
        "SPEC OMP2001",
        "Quantum chromodynamics",
        3_500_000,
        309,
    );
    s.mix = InstrMix {
        load: 0.20,
        store: 0.09,
        branch: 0.07,
        cond_reg: 0.02,
        fixed: 0.17,
        vector: 0.45,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.92,
        max_dist: 4,
    };
    s.mem = MemBehavior::private(256 * KB, AccessPattern::Strided(8)).with_locality(0.90);
    s.branch_mispredict_rate = 0.004;
    s
}

// --------------------------------------------------------------------------
// SSCA2, STREAM, commercial benchmarks
// --------------------------------------------------------------------------

/// SSCA2 — graph analysis: integer, irregular shared accesses, lock heavy
/// (Table I calls it out explicitly).
pub fn ssca2() -> WorkloadSpec {
    let mut s = entry(
        "SSCA2",
        "SSCA",
        "Graph analysis; integer ops, lock heavy",
        1_800_000,
        401,
    );
    s.mix = InstrMix {
        load: 0.30,
        store: 0.10,
        branch: 0.16,
        cond_reg: 0.03,
        fixed: 0.39,
        vector: 0.02,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.92,
        max_dist: 3,
    };
    s.mem = MemBehavior::private(128 * KB, AccessPattern::Random)
        .with_shared(12 * MB, 0.6, 0.3)
        .with_locality(0.925);
    s.branch_mispredict_rate = 0.018;
    s.sync = SyncSpec::SpinLock {
        cs_interval: 450,
        cs_len: 12,
    };
    s
}

/// STREAM — synthetic memory-bandwidth benchmark: every access touches a
/// new line of a huge array.
pub fn stream() -> WorkloadSpec {
    let mut s = entry(
        "Stream",
        "Synthetic",
        "Streaming memory bandwidth (triad-style)",
        1_200_000,
        402,
    );
    s.mix = InstrMix::mem_stream();
    s.dep = DepProfile {
        prob: 0.80,
        max_dist: 12,
    };
    s.mem = MemBehavior::private(32 * MB, AccessPattern::Strided(8));
    s.branch_mispredict_rate = 0.002;
    s
}

/// SPECjbb2005 — server-side Java: diverse mix, light blocking locks,
/// moderate footprint.
pub fn specjbb() -> WorkloadSpec {
    let mut s = entry(
        "SPECjbb",
        "SPECjbb2005",
        "Server-side Java, per-thread warehouses",
        3_000_000,
        403,
    );
    s.mix = InstrMix {
        load: 0.24,
        store: 0.11,
        branch: 0.13,
        cond_reg: 0.02,
        fixed: 0.32,
        vector: 0.18,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(3 * MB, AccessPattern::Random).with_locality(0.93);
    s.branch_mispredict_rate = 0.010;
    s.sync = SyncSpec::BlockingLock {
        cs_interval: 900,
        cs_len: 15,
        wake_latency: 30,
    };
    s.code_footprint = 192 * KB;
    s
}

/// SPECjbb-contention — the paper's custom single-warehouse variant: all
/// worker threads hammer one lock; the heaviest SMT loser (0.25x in Fig. 7).
pub fn specjbb_contention() -> WorkloadSpec {
    let mut s = entry(
        "SPECjbb_contention",
        "Custom",
        "SPECjbb with one shared warehouse; heavy lock contention",
        1_200_000,
        404,
    );
    s.mix = InstrMix {
        load: 0.24,
        store: 0.11,
        branch: 0.13,
        cond_reg: 0.02,
        fixed: 0.32,
        vector: 0.18,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(512 * KB, AccessPattern::Random)
        .with_shared(2 * MB, 0.4, 0.3)
        .with_locality(0.94);
    s.branch_mispredict_rate = 0.010;
    s.sync = SyncSpec::SpinLock {
        cs_interval: 180,
        cs_len: 22,
    };
    s.code_footprint = 192 * KB;
    s
}

/// DayTrader — WebSphere trading benchmark: network I/O keeps threads
/// blocked much of the time.
pub fn daytrader() -> WorkloadSpec {
    let mut s = entry(
        "Daytrader",
        "Commercial",
        "Online stock trading emulation; heavy network I/O",
        1_800_000,
        405,
    );
    s.mix = InstrMix {
        load: 0.25,
        store: 0.11,
        branch: 0.14,
        cond_reg: 0.02,
        fixed: 0.31,
        vector: 0.17,
    }
    .normalized();
    s.dep = DepProfile {
        prob: 0.90,
        max_dist: 5,
    };
    s.mem = MemBehavior::private(2 * MB, AccessPattern::Random).with_locality(0.94);
    s.branch_mispredict_rate = 0.012;
    s.sync = SyncSpec::RateLimited {
        work_per_kcycle: 2_700,
    };
    s.code_footprint = 256 * KB;
    s
}

// --------------------------------------------------------------------------
// Suites
// --------------------------------------------------------------------------

/// The AIX/POWER7 evaluation set: the 28 labels of Fig. 6.
pub fn power7_suite() -> Vec<WorkloadSpec> {
    vec![
        ammp(),
        applu(),
        apsi(),
        equake(),
        fma3d(),
        gafort(),
        mgrid(),
        swim(),
        wupwise(),
        blackscholes(),
        bt(),
        cg_mpi(),
        dedup(),
        ep(),
        ep_mpi(),
        fluidanimate(),
        ft_mpi(),
        is_nas(),
        is_mpi(),
        lu_mpi(),
        mg(),
        mg_mpi(),
        ssca2(),
        stream(),
        streamcluster(),
        specjbb(),
        specjbb_contention(),
        daytrader(),
    ]
}

/// The Linux/Core i7 evaluation set: the labels of Fig. 10 (plus canneal,
/// which appears in Fig. 12).
pub fn nehalem_suite() -> Vec<WorkloadSpec> {
    vec![
        blackscholes_pthreads(),
        bodytrack(),
        bodytrack_pthreads(),
        bt(),
        canneal(),
        cg_mpi().renamed("CG"),
        dedup(),
        ep(),
        facesim(),
        ferret(),
        fluidanimate(),
        freqmine(),
        ft_mpi().renamed("FT"),
        is_nas(),
        lu_mpi().renamed("LU"),
        raytrace(),
        sp(),
        streamcluster(),
        swaptions(),
        ua(),
        vips(),
        x264(),
        ssca2(),
    ]
}

/// The three motivating applications of Fig. 1.
pub fn fig1_trio() -> Vec<WorkloadSpec> {
    vec![equake(), mg(), ep()]
}

/// The five representative benchmarks whose instruction mixes Fig. 7 plots.
pub fn fig7_five() -> Vec<WorkloadSpec> {
    vec![
        blackscholes(),
        fluidanimate(),
        dedup(),
        ssca2(),
        specjbb_contention(),
    ]
}

impl WorkloadSpec {
    /// Rename a spec (used where the Nehalem suite drops the `_MPI` suffix).
    pub fn renamed(mut self, name: &str) -> WorkloadSpec {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_catalog_specs_validate() {
        for s in power7_suite().into_iter().chain(nehalem_suite()) {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn power7_suite_matches_fig6_labels() {
        let names: HashSet<String> = power7_suite().into_iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 28, "duplicate names");
        for expected in [
            "Ammp",
            "Applu",
            "Apsi",
            "Equake",
            "Fma3d",
            "Gafort",
            "Mgrid",
            "Swim",
            "Wupwise",
            "Blackscholes",
            "BT",
            "CG_MPI",
            "Dedup",
            "EP",
            "EP_MPI",
            "Fluidanimate",
            "FT_MPI",
            "IS",
            "IS_MPI",
            "LU_MPI",
            "MG",
            "MG_MPI",
            "SSCA2",
            "Stream",
            "Streamcluster",
            "SPECjbb",
            "SPECjbb_contention",
            "Daytrader",
        ] {
            assert!(names.contains(expected), "missing {expected}");
        }
    }

    #[test]
    fn nehalem_suite_has_distinct_labels() {
        let suite = nehalem_suite();
        let names: HashSet<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), suite.len(), "duplicate names in nehalem suite");
        assert!(names.contains("streamcluster") || names.contains("Streamcluster"));
        assert!(names.contains("x264"));
    }

    #[test]
    fn seeds_are_distinct_within_each_suite() {
        for suite in [power7_suite(), nehalem_suite()] {
            let mut seen = HashSet::new();
            for s in &suite {
                assert!(
                    seen.insert((s.seed, s.name.clone())),
                    "duplicate (seed,name)"
                );
            }
        }
    }

    #[test]
    fn fig_subsets_are_drawn_from_the_catalog() {
        assert_eq!(fig1_trio().len(), 3);
        assert_eq!(fig7_five().len(), 5);
        let p7: HashSet<String> = power7_suite().into_iter().map(|s| s.name).collect();
        for s in fig1_trio().into_iter().chain(fig7_five()) {
            assert!(p7.contains(&s.name), "{} not in the POWER7 suite", s.name);
        }
    }

    #[test]
    fn catalog_mixes_are_diverse() {
        // Sanity: the catalog must span homogeneous and diverse mixes, or
        // the mix-deviation factor has nothing to discriminate.
        let suite = power7_suite();
        let dev = |s: &WorkloadSpec| {
            let ideal = InstrMix::ideal_p7().as_fractions();
            let f = s.mix.as_fractions();
            // Fold CR into branch as the metric does.
            let mut v = 0.0;
            v += (f[0] - ideal[0]).powi(2);
            v += (f[1] - ideal[1]).powi(2);
            v += ((f[2] + f[3]) - (ideal[2] + ideal[3])).powi(2);
            v += (f[4] - ideal[4]).powi(2);
            v += (f[5] - ideal[5]).powi(2);
            v.sqrt()
        };
        let devs: Vec<f64> = suite.iter().map(dev).collect();
        let min = devs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = devs.iter().cloned().fold(0.0f64, f64::max);
        assert!(min < 0.12, "no near-ideal mixes in catalog: min={min}");
        assert!(max > 0.3, "no skewed mixes in catalog: max={max}");
    }
}
