//! Golden-file check of the record/replay invariant.
//!
//! `tests/golden/phased.smtc` is a committed counter trace of one
//! closed-loop run (EP → contended SPECjbb → EP on the single-chip
//! POWER7-like machine), and `tests/golden/phased.decisions.json` is the
//! decision log that run produced. Replaying the trace through a fresh
//! [`AutotuneLoop`] with a [`DryRunActuator`] must reproduce the log byte
//! for byte — the decision core is a pure function of the window stream,
//! so any drift means a behavior change that must be reviewed (and, if
//! intended, re-goldened).
//!
//! The CLI mirrors this exact configuration (`smtselect autotune --replay
//! tests/golden/phased.smtc --threshold 0.10 --mid 0.15`), which is what
//! the CI `autotune-smoke` job diffs.
//!
//! Regenerate both files after an intended policy change with:
//!
//! ```text
//! SMT_AUTOTUNE_REGOLDEN=1 cargo test -p smt-autotune --test golden_replay
//! ```

use std::path::PathBuf;

use smt_autotune::{AutotuneConfig, AutotuneLoop, DryRunActuator, SimActuator};
use smt_collect::{TraceBackend, TraceMeta, TraceWriter};
use smt_sim::{Error, MachineConfig, SmtLevel};
use smt_workloads::{catalog, PhasedWorkload};
use smtsm::{LevelSelector, MetricSpec, ThresholdPredictor};

/// Pinned run parameters. These must stay in lockstep with the CI job's
/// CLI flags; the golden files encode exactly this configuration.
const WINDOW_CYCLES: u64 = 4_000;
const T_TOP: f64 = 0.10;
const T_MID: f64 = 0.15;
const MAX_CYCLES: u64 = 600_000_000;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn config() -> AutotuneConfig {
    // Deliberately NOT `from_env()`: the golden run must be immune to
    // whatever SMT_AUTOTUNE_* knobs happen to be exported.
    AutotuneConfig {
        window_cycles: WINDOW_CYCLES,
        ..AutotuneConfig::default()
    }
}

fn make_loop() -> Result<AutotuneLoop, Error> {
    let selector = LevelSelector::three_level(
        ThresholdPredictor::fixed(T_TOP),
        ThresholdPredictor::fixed(T_MID),
    );
    AutotuneLoop::new(selector, MetricSpec::power7(), config())
}

fn regen() -> Result<(), Error> {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir)?;
    let workload = PhasedWorkload::new(
        "golden-phased".to_string(),
        vec![
            catalog::ep().scaled(0.2),
            catalog::specjbb_contention().scaled(0.3),
            catalog::ep().scaled(0.12),
        ],
    );
    let cfg = MachineConfig::power7(1);
    let sim = smt_sim::Simulation::new(cfg.clone(), SmtLevel::Smt4, workload);
    let mut act = SimActuator::new(sim);
    let mut ctl = make_loop()?;
    let meta = TraceMeta {
        machine: "p7".to_string(),
        nports: cfg.arch.num_ports(),
        window_cycles: WINDOW_CYCLES,
    };
    let mut writer = TraceWriter::create(dir.join("phased.smtc"), meta)?;
    let report = act.run_recording(&mut ctl, MAX_CYCLES, &mut writer)?;
    writer.finalize()?;
    assert!(report.completed, "golden run must finish its workload");
    assert!(
        report.decisions.switches >= 2,
        "golden run must exercise the actuator, got {} switches",
        report.decisions.switches
    );
    let body =
        serde_json::to_string_pretty(&report.decisions).map_err(|e| Error::Serde(e.to_string()))?;
    std::fs::write(dir.join("phased.decisions.json"), body + "\n")?;
    eprintln!(
        "regenerated golden: {} windows, {} switches, {} phase changes",
        report.decisions.windows, report.decisions.switches, report.decisions.phase_changes
    );
    Ok(())
}

#[test]
fn committed_trace_replays_to_the_committed_decision_log() -> Result<(), Error> {
    if std::env::var("SMT_AUTOTUNE_REGOLDEN").is_ok() {
        return regen();
    }
    let dir = golden_dir();
    let mut backend = TraceBackend::open(dir.join("phased.smtc"))?;
    let mut ctl = make_loop()?;
    let mut dry = DryRunActuator::new();
    let report = ctl.run_stream(&mut backend, &mut dry, u64::MAX)?;
    let replayed =
        serde_json::to_string_pretty(&report).map_err(|e| Error::Serde(e.to_string()))? + "\n";
    let committed = std::fs::read_to_string(dir.join("phased.decisions.json"))?;
    assert_eq!(
        replayed, committed,
        "decision log drifted from tests/golden/phased.decisions.json; if the \
         policy change is intended, regenerate with SMT_AUTOTUNE_REGOLDEN=1"
    );
    assert_eq!(
        dry.log().len() as u64,
        report.switches,
        "every switch must reach the dry-run actuator"
    );
    Ok(())
}
