//! Closed-loop phase-aware SMT autotuning.
//!
//! Everything below the `smtselect` CLI verb that *acts* on the paper's
//! metric lives here. The pipeline the crate closes:
//!
//! ```text
//!   CounterBackend ──windows──▶ AutotuneLoop ──Command──▶ Actuator
//!        ▲                        │   │                      │
//!        │              VectorPhaseDetector                  │
//!        │                        │   │                      ▼
//!   (sim / perf /           PhaseMemory           (sim / dry-run log /
//!    .smtc trace)        (learned levels)          sched_setaffinity)
//! ```
//!
//! - [`AutotuneLoop`] folds counter windows into the Eq.-1 factor vector,
//!   detects phase boundaries by change-point detection on *all three*
//!   factors, keys phases into a [`PhaseMemory`] so revisits reuse their
//!   learned level, and guards every decision with hysteresis + cooldown.
//! - [`Actuator`] is the seam between decision and effect. [`SimActuator`]
//!   reconfigures the in-tree simulator (ground truth for regret studies),
//!   [`DryRunActuator`] only logs (safe everywhere; the replay target for
//!   golden-file CI), and [`AffinityActuator`] shrinks a process's CPU
//!   affinity mask on Linux/x86-64 via raw `sched_setaffinity` — probed
//!   with [`AffinityActuator::probe`] and cleanly reported as unsupported
//!   elsewhere.
//! - Because the decision core is a pure function of the window stream, a
//!   run recorded to a `.smtc` trace replays to a byte-identical decision
//!   log on any host.
//!
//! Policy knobs live in [`AutotuneConfig`] and can be overridden per run
//! through `SMT_AUTOTUNE_*` environment variables ([`ENV_KNOBS`]).

#![warn(missing_docs)]

pub mod actuator;
pub mod affinity;
pub mod config;
pub mod memory;
pub mod runtime;

pub use actuator::{Actuation, Actuator, Command, DecisionReason, DryRunActuator, SimActuator};
pub use affinity::{AffinityActuator, AffinityReport};
pub use config::{AutotuneConfig, ENV_KNOBS};
pub use memory::{PhaseEntry, PhaseKey, PhaseMemory};
pub use runtime::{
    AutotuneDecision, AutotuneLoop, AutotuneReport, AutotuneSimReport, DecisionRecord,
};
