//! The closed-loop controller.
//!
//! [`AutotuneLoop`] generalizes `smt_sched::DynamicSmtController` from a
//! recommender into a runtime: it folds counter windows into the Eq.-1
//! factor vector, runs change-point detection on the *vector* (not just a
//! scalar), keys each detected phase into a [`PhaseMemory`] so revisited
//! phases replay their learned level instead of re-proving it, and applies
//! hysteresis + cooldown before letting any decision reach an
//! [`Actuator`].
//!
//! The decision core ([`AutotuneLoop::observe`]) is a pure function of the
//! window stream: driving it from a live simulation
//! ([`SimActuator::run`]), from a daemon's ingested snapshots, or from a
//! recorded `.smtc` trace ([`AutotuneLoop::run_stream`]) produces
//! byte-identical decision logs — which is what the golden-file CI job
//! enforces.

use serde::{Deserialize, Serialize};
use smt_collect::{CounterBackend, TraceWriter};
use smt_sim::{Error, SmtLevel, WindowMeasurement, Workload};
use smtsm::{
    LevelSelector, MetricSpec, OnlineSampler, PhaseDetector, SmtsmFactors, VectorPhaseDetector,
};

use crate::actuator::{Actuator, Command, DecisionReason, SimActuator};
use crate::config::AutotuneConfig;
use crate::memory::{PhaseKey, PhaseMemory};

/// What the loop wants after observing one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutotuneDecision {
    /// Level the machine should run at for the next window.
    pub level: SmtLevel,
    /// This window triggered a level switch (the driver must actuate).
    pub switched: bool,
    /// Why, when something happened this window.
    pub reason: Option<DecisionReason>,
    /// Smoothed metric value (top-level windows only).
    pub metric: Option<f64>,
    /// Quantized signature of the current phase, once keyed.
    pub phase: Option<PhaseKey>,
}

/// One logged decision event. Plain holds are not logged — the log captures
/// every switch, phase boundary, recall, and memory write, so it stays
/// small, human-auditable, and byte-stable for golden diffs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Global window index (1-based).
    pub window: u64,
    /// Level the window was measured at.
    pub from: SmtLevel,
    /// Level commanded for the next window (== `from` for non-switch
    /// events like `Learn` and unactioned `PhaseChange`).
    pub to: SmtLevel,
    /// What happened.
    pub reason: DecisionReason,
    /// Smoothed metric at decision time (top-level windows only).
    pub metric: Option<f64>,
    /// Phase signature involved, when keyed.
    pub phase: Option<PhaseKey>,
}

/// Summary + decision log of one autotuned run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutotuneReport {
    /// Windows observed.
    pub windows: u64,
    /// Actuated level switches.
    pub switches: u64,
    /// Switches that were probe returns to the top level.
    pub probes: u64,
    /// Phase boundaries confirmed by the detectors.
    pub phase_changes: u64,
    /// Switches answered from the phase memory.
    pub recalls: u64,
    /// Memory writes.
    pub learned: u64,
    /// Phases the memory holds at the end of the run.
    pub phases_remembered: usize,
    /// Level commanded after the final window.
    pub final_level: SmtLevel,
    /// The full event log.
    pub decisions: Vec<DecisionRecord>,
}

/// Ground-truth outcome of a closed-loop run on the simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutotuneSimReport {
    /// The loop's decisions (identical to what a replay reproduces).
    pub decisions: AutotuneReport,
    /// Cycles elapsed under loop control.
    pub cycles: u64,
    /// Work completed.
    pub work_done: u64,
    /// Work per cycle over the whole managed run.
    pub perf: f64,
    /// The workload ran to completion.
    pub completed: bool,
    /// Cycles lost to pipeline drains across all switches.
    pub drain_cycles: u64,
}

/// The closed-loop phase-aware autotuner.
#[derive(Debug, Clone)]
pub struct AutotuneLoop {
    selector: LevelSelector,
    sampler: OnlineSampler,
    cfg: AutotuneConfig,
    /// Factor-vector change-point detector (fed at the top level).
    detector: VectorPhaseDetector,
    /// IPC change-point watcher (fed while parked below the top level).
    parked_watch: PhaseDetector,
    memory: PhaseMemory,
    /// Candidate level and how many consecutive windows recommended it.
    pending: Option<(SmtLevel, u64)>,
    /// Windows spent parked since the last probe.
    parked_windows: u64,
    /// A probe is due but was deferred by the cooldown.
    probe_armed: bool,
    /// The last switch was a probe to the top: a memory recall may answer
    /// it inside the cooldown, so the probe→recall round trip counts as
    /// one decision against the switch-rate bound.
    recall_exempt: bool,
    /// Windows since the last actuated switch (cooldown accounting).
    since_switch: u64,
    /// Consecutive windows at the top level since arrival.
    windows_at_top: u64,
    /// Signature of the current phase, once computed.
    phase_key: Option<PhaseKey>,
    /// Global window counter.
    window: u64,
    decisions: Vec<DecisionRecord>,
    switches: u64,
    probes: u64,
    phase_changes: u64,
    recalls: u64,
    learned: u64,
}

/// Windows the loop waits after arriving at the top level before trusting
/// the factor EWMAs enough to key the phase (the first window after a
/// reconfiguration still carries mixed state).
const KEYING_WINDOW: u64 = 2;

impl AutotuneLoop {
    /// Build a loop from a trained selector. Fails on an invalid config.
    pub fn new(
        selector: LevelSelector,
        spec: MetricSpec,
        cfg: AutotuneConfig,
    ) -> Result<AutotuneLoop, Error> {
        cfg.validate()?;
        Ok(AutotuneLoop {
            selector,
            sampler: OnlineSampler::new(spec, cfg.window_cycles, cfg.alpha),
            detector: VectorPhaseDetector::for_factors(),
            parked_watch: PhaseDetector::new(0.4, 0.5, 3),
            memory: PhaseMemory::new(cfg.memory_capacity),
            cfg,
            pending: None,
            parked_windows: 0,
            probe_armed: false,
            recall_exempt: false,
            since_switch: u64::MAX / 2, // no cooldown before the first switch
            windows_at_top: 0,
            phase_key: None,
            window: 0,
            decisions: Vec::new(),
            switches: 0,
            probes: 0,
            phase_changes: 0,
            recalls: 0,
            learned: 0,
        })
    }

    /// The highest level the selector knows about.
    pub fn top_level(&self) -> SmtLevel {
        self.selector
            .rungs
            .first()
            .map(|(l, _)| *l)
            .unwrap_or(self.selector.floor)
    }

    /// The loop's policy knobs.
    pub fn config(&self) -> &AutotuneConfig {
        &self.cfg
    }

    /// The phase memory (learned levels per phase signature).
    pub fn memory(&self) -> &PhaseMemory {
        &self.memory
    }

    /// Windows observed so far.
    pub fn windows_observed(&self) -> u64 {
        self.window
    }

    fn can_switch(&self) -> bool {
        self.since_switch >= self.cfg.cooldown
    }

    fn record(
        &mut self,
        from: SmtLevel,
        to: SmtLevel,
        reason: DecisionReason,
        metric: Option<f64>,
        phase: Option<PhaseKey>,
    ) {
        self.decisions.push(DecisionRecord {
            window: self.window,
            from,
            to,
            reason,
            metric,
            phase,
        });
    }

    /// Issue a switch decision and reset per-level state.
    fn switch_to(
        &mut self,
        from: SmtLevel,
        to: SmtLevel,
        reason: DecisionReason,
        metric: Option<f64>,
    ) -> AutotuneDecision {
        let top = self.top_level();
        self.sampler.reset();
        self.detector.reset();
        self.parked_watch.reset();
        self.pending = None;
        self.parked_windows = 0;
        self.probe_armed = false;
        self.since_switch = 0;
        self.windows_at_top = 0;
        self.recall_exempt =
            to == top && matches!(reason, DecisionReason::Probe | DecisionReason::PhaseChange);
        if to == top {
            // Arriving at the top: the phase will be re-keyed fresh.
            self.phase_key = None;
        }
        self.switches += 1;
        match reason {
            DecisionReason::Probe | DecisionReason::PhaseChange => self.probes += 1,
            DecisionReason::Recall => self.recalls += 1,
            _ => {}
        }
        let phase = self.phase_key;
        self.record(from, to, reason, metric, phase);
        AutotuneDecision {
            level: to,
            switched: true,
            reason: Some(reason),
            metric,
            phase,
        }
    }

    fn current_signature(&self) -> Option<SmtsmFactors> {
        let fast = self.detector.fast()?;
        Some(SmtsmFactors {
            mix_deviation: fast[0],
            disp_held: fast[1],
            scalability: fast[2],
        })
    }

    /// Fold one counter window into the loop and decide what level the
    /// machine should run at next. Windows carry the level they were
    /// measured at (`m.smt`): top-level windows feed the metric and the
    /// factor-vector detector, parked windows feed only the IPC watcher
    /// and the probe timer.
    pub fn observe(&mut self, m: &WindowMeasurement) -> AutotuneDecision {
        self.window += 1;
        self.since_switch = self.since_switch.saturating_add(1);
        let top = self.top_level();
        if m.smt == top {
            self.observe_at_top(m, top)
        } else {
            self.observe_parked(m, top)
        }
    }

    /// Attempt to answer the (re-)keyed phase from memory. Recall may act
    /// inside the cooldown when the loop just probed up — the
    /// probe→recall round trip is one logical decision.
    fn try_recall(&mut self, key: Option<PhaseKey>, top: SmtLevel) -> Option<AutotuneDecision> {
        if !self.cfg.memory || !(self.can_switch() || self.recall_exempt) {
            return None;
        }
        let level = self.memory.recall(key?)?;
        if level == top {
            return None;
        }
        Some(self.switch_to(top, level, DecisionReason::Recall, None))
    }

    fn observe_at_top(&mut self, m: &WindowMeasurement, top: SmtLevel) -> AutotuneDecision {
        self.windows_at_top += 1;
        let (metric, factors) = self.sampler.push_window(m);
        let fired = self.cfg.phase_detect && self.detector.push_factors(&factors);

        if fired {
            // Confirmed phase boundary while at the top: re-anchor the
            // metric smoothing on the new phase, re-key it, consult memory.
            self.phase_changes += 1;
            self.sampler.reset();
            self.pending = None;
            self.windows_at_top = 1;
            let key = self.current_signature().map(|f| PhaseKey::from_factors(&f));
            self.phase_key = key;
            self.record(top, top, DecisionReason::PhaseChange, Some(metric), key);
            if let Some(d) = self.try_recall(key, top) {
                return d;
            }
            return AutotuneDecision {
                level: top,
                switched: false,
                reason: Some(DecisionReason::PhaseChange),
                metric: Some(metric),
                phase: key,
            };
        }

        // Track the phase signature continuously once the EWMAs have
        // settled after arrival. A key change is a soft phase boundary —
        // the detector tracks drifts it never confirms — and it is the
        // moment a remembered phase can answer without re-probing. Keying
        // *continuously* (not once per arrival) also keeps the learn path
        // below from mislabelling a stale key when a boundary slips past
        // the detector.
        if self.windows_at_top >= KEYING_WINDOW {
            let key = self.current_signature().map(|f| PhaseKey::from_factors(&f));
            if key != self.phase_key {
                self.phase_key = key;
                if let Some(d) = self.try_recall(key, top) {
                    return d;
                }
            }
        }

        let want = self.selector.recommend(metric);
        if want != top && self.windows_at_top > self.cfg.warmup {
            let n = match self.pending {
                Some((lvl, n)) if lvl == want => n + 1,
                _ => 1,
            };
            self.pending = Some((want, n));
            if n >= self.cfg.hysteresis && self.can_switch() {
                if self.cfg.memory {
                    if let Some(k) = self.phase_key {
                        if self.memory.peek(k) != Some(want) {
                            self.memory.learn(k, want);
                            self.learned += 1;
                            self.record(top, top, DecisionReason::Learn, Some(metric), Some(k));
                        }
                    }
                }
                return self.switch_to(top, want, DecisionReason::Metric, Some(metric));
            }
        } else {
            self.pending = None;
            // The phase holds steady at the top: remember that.
            if want == top && self.cfg.memory && self.windows_at_top == self.cfg.settle_windows {
                if let Some(k) = self.phase_key {
                    if self.memory.peek(k) != Some(top) {
                        self.memory.learn(k, top);
                        self.learned += 1;
                        self.record(top, top, DecisionReason::Learn, Some(metric), Some(k));
                    }
                }
            }
        }
        AutotuneDecision {
            level: top,
            switched: false,
            reason: None,
            metric: Some(metric),
            phase: self.phase_key,
        }
    }

    fn observe_parked(&mut self, m: &WindowMeasurement, top: SmtLevel) -> AutotuneDecision {
        self.parked_windows += 1;
        let phase_changed = self.cfg.phase_detect && self.parked_watch.push(m.ipc());
        if phase_changed {
            self.phase_changes += 1;
            // The phase under our feet moved: the learned level no longer
            // applies, so a probe is due as soon as the cooldown allows.
            self.probe_armed = true;
            self.record(m.smt, m.smt, DecisionReason::PhaseChange, None, None);
        }
        let due = self.probe_armed || self.parked_windows >= self.cfg.probe_interval;
        if due && self.can_switch() {
            let reason = if self.probe_armed && phase_changed {
                DecisionReason::PhaseChange
            } else {
                DecisionReason::Probe
            };
            return self.switch_to(m.smt, top, reason, None);
        }
        AutotuneDecision {
            level: m.smt,
            switched: false,
            reason: phase_changed.then_some(DecisionReason::PhaseChange),
            metric: None,
            phase: self.phase_key,
        }
    }

    /// Snapshot the run so far as a report.
    pub fn report(&self) -> AutotuneReport {
        AutotuneReport {
            windows: self.window,
            switches: self.switches,
            probes: self.probes,
            phase_changes: self.phase_changes,
            recalls: self.recalls,
            learned: self.learned,
            phases_remembered: self.memory.len(),
            final_level: self
                .decisions
                .iter()
                .rev()
                .find(|d| d.from != d.to)
                .map(|d| d.to)
                .unwrap_or_else(|| self.top_level()),
            decisions: self.decisions.clone(),
        }
    }

    /// Drive the loop from any [`CounterBackend`] (live PMU, simulator
    /// backend, or a recorded `.smtc` trace), sending every switch to
    /// `actuator`. Stops at stream exhaustion or after `max_windows`.
    ///
    /// With a `TraceBackend` and a [`crate::DryRunActuator`] this is the
    /// replay path: windows arrive exactly as recorded, so the decision
    /// log reproduces the original run byte for byte.
    pub fn run_stream(
        &mut self,
        backend: &mut dyn CounterBackend,
        actuator: &mut dyn Actuator,
        max_windows: u64,
    ) -> Result<AutotuneReport, Error> {
        let mut seen = 0u64;
        while seen < max_windows {
            let Some(m) = backend.next_window(self.cfg.window_cycles)? else {
                break;
            };
            seen += 1;
            let from = m.smt;
            let d = self.observe(&m);
            if d.switched {
                let cmd = Command {
                    window: self.window,
                    from,
                    to: d.level,
                    reason: d.reason.unwrap_or(DecisionReason::Metric),
                };
                actuator.apply(&cmd)?;
            }
        }
        Ok(self.report())
    }
}

impl<W: Workload> SimActuator<W> {
    /// Drive `ctl` closed-loop on the owned simulation until the workload
    /// finishes or `max_cycles` elapse. Ground truth: switches really
    /// reconfigure the machine and drains really cost cycles.
    pub fn run(
        &mut self,
        ctl: &mut AutotuneLoop,
        max_cycles: u64,
    ) -> Result<AutotuneSimReport, Error> {
        self.drive::<std::io::Cursor<Vec<u8>>>(ctl, max_cycles, None)
    }

    /// Like [`run`], teeing every observed window into `rec` so the run
    /// can be replayed bit-identically later.
    ///
    /// [`run`]: SimActuator::run
    pub fn run_recording<Wr: std::io::Write + std::io::Seek>(
        &mut self,
        ctl: &mut AutotuneLoop,
        max_cycles: u64,
        rec: &mut TraceWriter<Wr>,
    ) -> Result<AutotuneSimReport, Error> {
        self.drive(ctl, max_cycles, Some(rec))
    }

    fn drive<Wr: std::io::Write + std::io::Seek>(
        &mut self,
        ctl: &mut AutotuneLoop,
        max_cycles: u64,
        mut rec: Option<&mut TraceWriter<Wr>>,
    ) -> Result<AutotuneSimReport, Error> {
        let top = ctl.top_level();
        let start = self.sim().now();
        let window_cycles = ctl.config().window_cycles;
        while !self.sim().finished() && self.sim().now() - start < max_cycles {
            let parked = self.sim().smt() != top;
            let m = self.sim_mut().measure_window(window_cycles);
            if parked && self.sim().finished() {
                // A probe return would only burn drain cycles now.
                break;
            }
            if let Some(r) = rec.as_deref_mut() {
                r.append(&m)?;
            }
            let from = m.smt;
            let d = ctl.observe(&m);
            if d.switched {
                let cmd = Command {
                    window: ctl.windows_observed(),
                    from,
                    to: d.level,
                    reason: d.reason.unwrap_or(DecisionReason::Metric),
                };
                self.apply(&cmd)?;
            }
        }
        let cycles = self.sim().now() - start;
        let work_done = self.sim().workload().work_done();
        Ok(AutotuneSimReport {
            decisions: ctl.report(),
            cycles,
            work_done,
            perf: if cycles > 0 {
                work_done as f64 / cycles as f64
            } else {
                0.0
            },
            completed: self.sim().finished(),
            drain_cycles: self.drain_cycles(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::DryRunActuator;
    use smt_collect::{SimBackend, TraceBackend, TraceMeta};
    use smt_sim::{MachineConfig, Simulation};
    use smt_workloads::{catalog, PhasedWorkload, SyntheticWorkload};
    use smtsm::ThresholdPredictor;

    fn selector() -> LevelSelector {
        LevelSelector::three_level(
            ThresholdPredictor::fixed(0.05),
            ThresholdPredictor::fixed(0.10),
        )
    }

    fn small_cfg() -> AutotuneConfig {
        AutotuneConfig {
            window_cycles: 4_000,
            probe_interval: 24,
            ..AutotuneConfig::default()
        }
    }

    fn make_loop(cfg: AutotuneConfig) -> AutotuneLoop {
        AutotuneLoop::new(selector(), MetricSpec::power7(), cfg).expect("valid config")
    }

    fn phased_sim(scale: f64) -> Simulation<PhasedWorkload> {
        let w = PhasedWorkload::new(
            "compute-contention-compute",
            vec![
                catalog::ep().scaled(scale),
                catalog::specjbb_contention().scaled(scale * 1.5),
                catalog::ep().scaled(scale * 0.6),
            ],
        );
        Simulation::new(MachineConfig::power7(1), SmtLevel::Smt4, w)
    }

    #[test]
    fn scalable_workload_stays_at_top() -> Result<(), Error> {
        let sim = Simulation::new(
            MachineConfig::power7(1),
            SmtLevel::Smt4,
            SyntheticWorkload::new(catalog::ep().scaled(0.1)),
        );
        let mut act = SimActuator::new(sim);
        let mut ctl = make_loop(small_cfg());
        let report = act.run(&mut ctl, 50_000_000)?;
        assert!(report.completed);
        assert_eq!(report.decisions.switches, 0, "EP must not switch");
        assert_eq!(report.decisions.final_level, SmtLevel::Smt4);
        Ok(())
    }

    #[test]
    fn contended_workload_parks_low_and_phase_memory_learns() -> Result<(), Error> {
        let mut act = SimActuator::new(phased_sim(0.4));
        let mut ctl = make_loop(small_cfg());
        let report = act.run(&mut ctl, 300_000_000)?;
        assert!(report.completed, "phased run must finish");
        assert!(
            report.decisions.switches >= 2,
            "must switch down for contention and back up: {:#?}",
            report.decisions.decisions
        );
        assert!(
            report
                .decisions
                .decisions
                .iter()
                .any(|d| d.to < SmtLevel::Smt4 && d.from != d.to),
            "contention phase must park below the top"
        );
        assert!(report.decisions.learned >= 1, "memory must learn phases");
        assert!(report.perf > 0.0);
        Ok(())
    }

    #[test]
    fn cooldown_bounds_the_switch_rate() -> Result<(), Error> {
        // Whatever the signal does, two actuated switches can never be
        // closer than `cooldown` windows.
        let cfg = AutotuneConfig {
            cooldown: 6,
            ..small_cfg()
        };
        let mut act = SimActuator::new(phased_sim(0.4));
        let mut ctl = make_loop(cfg);
        let report = act.run(&mut ctl, 300_000_000)?;
        let switches: Vec<(u64, DecisionReason)> = report
            .decisions
            .decisions
            .iter()
            .filter(|d| d.from != d.to)
            .map(|d| (d.window, d.reason))
            .collect();
        for pair in switches.windows(2) {
            // A recall answering a probe is the second half of one round
            // trip and is exempt from the cooldown; every other switch
            // must respect it.
            if pair[1].1 == DecisionReason::Recall {
                continue;
            }
            assert!(
                pair[1].0 - pair[0].0 >= 6,
                "switches at windows {} and {} violate the cooldown",
                pair[0].0,
                pair[1].0
            );
        }
        Ok(())
    }

    #[test]
    fn stream_driver_matches_sim_driver() -> Result<(), Error> {
        // Drive one loop closed-loop on the simulator while recording, then
        // replay the trace through a second loop: decisions must be
        // byte-identical (the golden-file CI invariant).
        let dir = std::env::temp_dir().join("smt-autotune-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("stream_matches_sim.smtc");

        let mut act = SimActuator::new(phased_sim(0.4));
        let mut live = make_loop(small_cfg());
        let meta = TraceMeta {
            machine: "power7x1".to_string(),
            nports: 8,
            window_cycles: small_cfg().window_cycles,
        };
        let mut writer = TraceWriter::create(&path, meta)?;
        let live_report = act.run_recording(&mut live, 300_000_000, &mut writer)?;
        writer.finalize()?;

        let mut replayed = make_loop(small_cfg());
        let mut backend = TraceBackend::open(&path)?;
        let mut dry = DryRunActuator::new();
        let replay_report = replayed.run_stream(&mut backend, &mut dry, u64::MAX)?;

        let live_json = serde_json::to_string(&live_report.decisions)
            .map_err(|e| Error::Serde(e.to_string()))?;
        let replay_json =
            serde_json::to_string(&replay_report).map_err(|e| Error::Serde(e.to_string()))?;
        assert_eq!(live_json, replay_json, "replay diverged from live run");
        assert_eq!(
            dry.log().len() as u64,
            replay_report.switches,
            "every switch must reach the actuator"
        );
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn memory_recall_shortens_revisits() -> Result<(), Error> {
        // An oscillator revisits the same two phases; with memory on, later
        // visits should be answered by recall.
        let specs = PhasedWorkload::alternating(
            "osc",
            catalog::ep().scaled(0.4),
            catalog::specjbb_contention().scaled(0.6),
            3,
        );
        let sim = Simulation::new(MachineConfig::power7(1), SmtLevel::Smt4, specs);
        let mut act = SimActuator::new(sim);
        let mut ctl = make_loop(small_cfg());
        let report = act.run(&mut ctl, 600_000_000)?;
        assert!(report.completed);
        assert!(
            report.decisions.recalls >= 1,
            "revisited phases must hit the memory: {:#?}",
            report.decisions
        );
        Ok(())
    }

    #[test]
    fn memory_off_never_recalls() -> Result<(), Error> {
        let cfg = AutotuneConfig {
            memory: false,
            ..small_cfg()
        };
        let mut act = SimActuator::new(phased_sim(0.4));
        let mut ctl = make_loop(cfg);
        let report = act.run(&mut ctl, 300_000_000)?;
        assert_eq!(report.decisions.recalls, 0);
        assert_eq!(report.decisions.learned, 0);
        assert_eq!(report.decisions.phases_remembered, 0);
        Ok(())
    }

    #[test]
    fn sim_backend_stream_with_dry_run_is_decision_only() -> Result<(), Error> {
        // Streaming from a SimBackend with a DryRunActuator: decisions are
        // made but the machine never leaves the top level (nobody actuates
        // on the sim), so every later window still measures at the top.
        let sim = Simulation::new(
            MachineConfig::power7(1),
            SmtLevel::Smt4,
            SyntheticWorkload::new(catalog::specjbb_contention().scaled(0.2)),
        );
        let mut backend = SimBackend::new("contention", sim);
        let mut ctl = make_loop(small_cfg());
        let mut dry = DryRunActuator::new();
        let report = ctl.run_stream(&mut backend, &mut dry, 40)?;
        assert!(report.windows > 0);
        assert_eq!(dry.log().len() as u64, report.switches);
        if let Some(first) = dry.log().first() {
            assert!(first.to < SmtLevel::Smt4, "contention must command down");
        }
        Ok(())
    }
}
