//! Per-phase learned state.
//!
//! The controller pays for every decision it has to *re-derive*: probing a
//! remembered phase back through the full hysteresis window costs windows
//! at the wrong level. [`PhaseMemory`] closes that loop — each phase is
//! keyed by a coarse quantization of its Eq.-1 factor signature
//! ([`PhaseKey`]), and a revisited key replays its learned level
//! immediately. Keys are deliberately coarse: a boundary-straddling
//! signature just misses the memory and falls back to a normal probe,
//! which is safe; a fine-grained key that never matches twice would make
//! the memory useless.

use serde::{Deserialize, Serialize};
use smt_sim::SmtLevel;
use smtsm::SmtsmFactors;

/// A coarse, stable identifier for a workload phase: three 3-bit buckets
/// packed as `mix | held | scal` (9 bits), quantized from the phase's
/// factor signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseKey(pub u32);

impl PhaseKey {
    /// Bucket width for the mix-deviation factor (range ~[0, 1.2]).
    const MIX_BUCKET: f64 = 0.15;
    /// Bucket width for the dispatch-held fraction (range [0, 1]).
    const HELD_BUCKET: f64 = 0.125;
    /// Bucket width for scalability above its floor of 1.0.
    const SCAL_BUCKET: f64 = 0.35;

    /// Quantize a factor signature (typically the fast-EWMA estimates of a
    /// [`smtsm::VectorPhaseDetector`]) into a key.
    pub fn from_factors(f: &SmtsmFactors) -> PhaseKey {
        let bucket = |v: f64, width: f64| -> u32 {
            if !v.is_finite() || v <= 0.0 {
                0
            } else {
                ((v / width) as u32).min(7)
            }
        };
        let mix = bucket(f.mix_deviation, Self::MIX_BUCKET);
        let held = bucket(f.disp_held, Self::HELD_BUCKET);
        let scal = bucket((f.scalability - 1.0).max(0.0), Self::SCAL_BUCKET);
        PhaseKey((mix << 6) | (held << 3) | scal)
    }
}

impl std::fmt::Display for PhaseKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "phase[{}.{}.{}]",
            (self.0 >> 6) & 7,
            (self.0 >> 3) & 7,
            self.0 & 7
        )
    }
}

/// One remembered phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseEntry {
    /// The phase's quantized signature.
    pub key: PhaseKey,
    /// The level the controller last settled on for this phase.
    pub level: SmtLevel,
    /// Times this entry answered a recall.
    pub hits: u64,
    /// Times the learned level was (re)written.
    pub updates: u64,
}

/// Insertion-ordered map from [`PhaseKey`] to learned level.
///
/// A `Vec` rather than a hash map: the population is tiny (phases a real
/// workload revisits), iteration order — and therefore serialized reports —
/// stays deterministic, and eviction is plain FIFO on overflow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseMemory {
    entries: Vec<PhaseEntry>,
    capacity: usize,
}

impl PhaseMemory {
    /// An empty memory holding at most `capacity` phases.
    pub fn new(capacity: usize) -> PhaseMemory {
        assert!(capacity >= 1, "capacity must be >= 1");
        PhaseMemory {
            entries: Vec::new(),
            capacity,
        }
    }

    /// The learned level for `key`, bumping the entry's hit count.
    pub fn recall(&mut self, key: PhaseKey) -> Option<SmtLevel> {
        let e = self.entries.iter_mut().find(|e| e.key == key)?;
        e.hits += 1;
        Some(e.level)
    }

    /// Record (or overwrite) the learned level for `key`. Returns `true`
    /// when this changed what the memory would answer.
    pub fn learn(&mut self, key: PhaseKey, level: SmtLevel) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.updates += 1;
            if e.level == level {
                return false;
            }
            e.level = level;
            return true;
        }
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(PhaseEntry {
            key,
            level,
            hits: 0,
            updates: 1,
        });
        true
    }

    /// The learned level for `key` without bumping hit counts.
    pub fn peek(&self, key: PhaseKey) -> Option<SmtLevel> {
        self.entries.iter().find(|e| e.key == key).map(|e| e.level)
    }

    /// Phases currently remembered, oldest first.
    pub fn entries(&self) -> &[PhaseEntry] {
        &self.entries
    }

    /// Number of remembered phases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factors(mix: f64, held: f64, scal: f64) -> SmtsmFactors {
        SmtsmFactors {
            mix_deviation: mix,
            disp_held: held,
            scalability: scal,
        }
    }

    #[test]
    fn nearby_signatures_share_a_key_distant_ones_do_not() {
        let a = PhaseKey::from_factors(&factors(0.31, 0.20, 1.40));
        let b = PhaseKey::from_factors(&factors(0.33, 0.22, 1.45));
        let c = PhaseKey::from_factors(&factors(0.90, 0.80, 3.0));
        assert_eq!(a, b, "small jitter must not change the key");
        assert_ne!(a, c, "different phases must key differently");
    }

    #[test]
    fn degenerate_factors_key_safely() {
        let k = PhaseKey::from_factors(&factors(f64::NAN, -1.0, 0.0));
        assert_eq!(k, PhaseKey(0));
        // Huge values saturate at the top bucket instead of overflowing.
        let k = PhaseKey::from_factors(&factors(1e9, 1e9, 1e9));
        assert_eq!(k, PhaseKey((7 << 6) | (7 << 3) | 7));
    }

    #[test]
    fn learn_then_recall_round_trips_and_counts() {
        let mut m = PhaseMemory::new(8);
        let k = PhaseKey(42);
        assert_eq!(m.recall(k), None);
        assert!(m.learn(k, SmtLevel::Smt1));
        assert_eq!(m.recall(k), Some(SmtLevel::Smt1));
        assert!(!m.learn(k, SmtLevel::Smt1), "same level is not a change");
        assert!(m.learn(k, SmtLevel::Smt2), "new level is a change");
        assert_eq!(m.entries()[0].hits, 1);
        assert_eq!(m.entries()[0].updates, 3);
    }

    #[test]
    fn overflow_evicts_the_oldest_phase() {
        let mut m = PhaseMemory::new(2);
        m.learn(PhaseKey(1), SmtLevel::Smt1);
        m.learn(PhaseKey(2), SmtLevel::Smt2);
        m.learn(PhaseKey(3), SmtLevel::Smt4);
        assert_eq!(m.len(), 2);
        assert_eq!(m.peek(PhaseKey(1)), None, "oldest must be evicted");
        assert_eq!(m.peek(PhaseKey(3)), Some(SmtLevel::Smt4));
    }
}
