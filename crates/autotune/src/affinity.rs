//! Real actuation on Linux: CPU affinity as an SMT-level throttle.
//!
//! Operating systems do not expose "set the SMT level" directly, but the
//! standard operational equivalent — what `taskset`/`numactl` deployments
//! do — is shrinking a process's CPU affinity mask to fewer hardware
//! threads per core. [`AffinityActuator`] implements that with raw
//! `sched_getaffinity`/`sched_setaffinity` syscalls (no libc dependency,
//! same idiom as the collector's `perf_event_open` backend): commanding
//! level `L` on a machine whose top level is `T` keeps the first
//! `ceil(n·L/T)` of the `n` originally-allowed CPUs.
//!
//! Only x86-64 Linux has a real syscall layer; every other target reports
//! `-ENOSYS`, which surfaces as
//! [`SupportStatus::UnsupportedPlatform`] in the probe — CI probes first
//! and skips, it never fails, exactly like the PR 5 perf backend.

use serde::Serialize;
use smt_collect::SupportStatus;
use smt_sim::{Error, SmtLevel};

use crate::actuator::{Actuation, Actuator, Command};

const EPERM: i32 = 1;
const ESRCH: i32 = 3;
const EACCES: i32 = 13;
const EINVAL: i32 = 22;
const ENOSYS: i32 = 38;

/// Affinity mask buffer: 1024 CPUs, the kernel's default `CPU_SETSIZE`.
const MASK_BYTES: usize = 128;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    const SYS_SCHED_SETAFFINITY: i64 = 203;
    const SYS_SCHED_GETAFFINITY: i64 = 204;

    /// Three-argument raw syscall; returns `-errno` on failure.
    unsafe fn syscall3(n: i64, a1: i64, a2: i64, a3: i64) -> i64 {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    /// Returns the mask size the kernel copied out (> 0), or `-errno`.
    pub fn sched_getaffinity(pid: i32, mask: &mut [u8]) -> i64 {
        unsafe {
            syscall3(
                SYS_SCHED_GETAFFINITY,
                pid as i64,
                mask.len() as i64,
                mask.as_mut_ptr() as i64,
            )
        }
    }

    /// Returns 0, or `-errno`.
    pub fn sched_setaffinity(pid: i32, mask: &[u8]) -> i64 {
        unsafe {
            syscall3(
                SYS_SCHED_SETAFFINITY,
                pid as i64,
                mask.len() as i64,
                mask.as_ptr() as i64,
            )
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    use super::ENOSYS;

    pub fn sched_getaffinity(_pid: i32, _mask: &mut [u8]) -> i64 {
        -(ENOSYS as i64)
    }

    pub fn sched_setaffinity(_pid: i32, _mask: &[u8]) -> i64 {
        -(ENOSYS as i64)
    }
}

fn status_from_ret(ret: i64) -> SupportStatus {
    if ret >= 0 {
        return SupportStatus::Supported;
    }
    let errno = (-ret) as i32;
    match errno {
        ENOSYS => SupportStatus::UnsupportedPlatform,
        EPERM | EACCES => SupportStatus::Denied { errno },
        _ => SupportStatus::Missing { errno },
    }
}

fn cpus_in_mask(mask: &[u8], copied: usize) -> Vec<usize> {
    let mut cpus = Vec::new();
    for (byte_idx, b) in mask.iter().take(copied.min(mask.len())).enumerate() {
        for bit in 0..8 {
            if b & (1u8 << bit) != 0 {
                cpus.push(byte_idx * 8 + bit);
            }
        }
    }
    cpus
}

fn mask_from_cpus(cpus: &[usize]) -> [u8; MASK_BYTES] {
    let mut mask = [0u8; MASK_BYTES];
    for &cpu in cpus {
        if cpu / 8 < MASK_BYTES {
            mask[cpu / 8] |= 1u8 << (cpu % 8);
        }
    }
    mask
}

/// What affinity actuation can do on this host — the affinity analogue of
/// the collector's perf [`smt_collect::CapabilityReport`]. Built by
/// [`AffinityActuator::probe`], printed by the CLI, and inspected by CI
/// (probe-and-skip on hosts where the syscalls are masked).
#[derive(Debug, Clone, Serialize)]
pub struct AffinityReport {
    /// `target_os`/`target_arch` the probe ran on.
    pub platform: String,
    /// True when affinity can actually be changed for `pid`.
    pub usable: bool,
    /// Process probed (0 = the calling thread).
    pub pid: i32,
    /// CPUs the process may currently run on (empty when unreadable).
    pub cpus: Vec<usize>,
    /// Outcome of `sched_getaffinity`.
    pub get_status: SupportStatus,
    /// Outcome of re-applying the current mask via `sched_setaffinity`.
    pub set_status: SupportStatus,
    /// Human-readable context.
    pub notes: Vec<String>,
}

impl AffinityReport {
    /// Render as a short human-readable block.
    pub fn render(&self) -> String {
        let status = |s: &SupportStatus| match s {
            SupportStatus::Supported => "ok".to_string(),
            SupportStatus::Denied { errno } => format!("denied (errno {errno})"),
            SupportStatus::Missing { errno } => format!("failed (errno {errno})"),
            SupportStatus::UnsupportedPlatform => "no syscall on this platform".to_string(),
        };
        let mut out = format!(
            "affinity capability on {} (pid {}): {}\n",
            self.platform,
            self.pid,
            if self.usable { "USABLE" } else { "UNAVAILABLE" }
        );
        out.push_str(&format!(
            "  sched_getaffinity  {}\n  sched_setaffinity  {}\n  allowed cpus       {}\n",
            status(&self.get_status),
            status(&self.set_status),
            self.cpus.len()
        ));
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Applies SMT-level decisions to a real Linux process by shrinking or
/// restoring its CPU affinity mask.
#[derive(Debug, Clone)]
pub struct AffinityActuator {
    pid: i32,
    /// CPUs allowed at construction time — the "all hardware threads"
    /// baseline that commanding the top level restores.
    baseline: Vec<usize>,
    /// The machine's top SMT level (what the full baseline corresponds to).
    top: SmtLevel,
    applied: u64,
}

impl AffinityActuator {
    /// Probe what affinity actuation can do for `pid` (0 = this thread).
    /// Never fails: every outcome, including a masked syscall, is a
    /// structured report.
    pub fn probe(pid: i32) -> AffinityReport {
        let platform = format!("{}/{}", std::env::consts::OS, std::env::consts::ARCH);
        let mut mask = [0u8; MASK_BYTES];
        let got = sys::sched_getaffinity(pid, &mut mask);
        let get_status = status_from_ret(got);
        let mut notes = Vec::new();
        let (cpus, set_status) = if got > 0 {
            let cpus = cpus_in_mask(&mask, got as usize);
            // Re-apply the exact current mask: proves write permission
            // without perturbing the process.
            let set = sys::sched_setaffinity(pid, &mask);
            (cpus, status_from_ret(set))
        } else {
            (Vec::new(), get_status.clone())
        };
        if matches!(get_status, SupportStatus::UnsupportedPlatform) {
            notes.push("affinity syscalls only exist on linux/x86_64 builds".to_string());
        }
        if cpus.len() == 1 {
            notes.push("only one allowed CPU: nothing to throttle, actuation disabled".to_string());
        }
        let usable = get_status.ok() && set_status.ok() && cpus.len() >= 2;
        if usable {
            notes.push(format!(
                "commanding level L keeps the first ceil(n*ways(L)/ways(top)) of {} CPUs",
                cpus.len()
            ));
        }
        AffinityReport {
            platform,
            usable,
            pid,
            cpus,
            get_status,
            set_status,
            notes,
        }
    }

    /// Build an actuator for `pid` assuming the current affinity mask
    /// corresponds to running at `top`. Fails with a structured error on
    /// hosts where the probe reports unusable.
    pub fn new(pid: i32, top: SmtLevel) -> Result<AffinityActuator, Error> {
        let report = Self::probe(pid);
        if !report.usable {
            return Err(Error::Config(format!(
                "affinity actuation unavailable on {} (get: {:?}, set: {:?}, cpus: {})",
                report.platform,
                report.get_status,
                report.set_status,
                report.cpus.len()
            )));
        }
        Ok(AffinityActuator {
            pid,
            baseline: report.cpus,
            top,
            applied: 0,
        })
    }

    /// CPUs the actuator would allow at `level`: the first
    /// `ceil(n·ways(level)/ways(top))` of the baseline, never fewer than 1.
    pub fn cpus_for(&self, level: SmtLevel) -> Vec<usize> {
        let n = self.baseline.len();
        let keep = (n * level.ways()).div_ceil(self.top.ways()).clamp(1, n);
        self.baseline[..keep].to_vec()
    }

    /// Commands applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }
}

impl Actuator for AffinityActuator {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn apply(&mut self, cmd: &Command) -> Result<Actuation, Error> {
        if cmd.to > self.top {
            return Err(Error::MissingLevel {
                benchmark: format!("pid {}", self.pid),
                level: cmd.to,
            });
        }
        let cpus = self.cpus_for(cmd.to);
        let mask = mask_from_cpus(&cpus);
        let ret = sys::sched_setaffinity(self.pid, &mask);
        if ret < 0 {
            let errno = (-ret) as i32;
            let what = match errno {
                EPERM | EACCES => "permission denied",
                ESRCH => "no such process",
                EINVAL => "mask rejected",
                ENOSYS => "syscall unavailable",
                _ => "failed",
            };
            return Err(Error::Config(format!(
                "sched_setaffinity(pid {}, {} cpus): {what} (errno {errno})",
                self.pid,
                cpus.len()
            )));
        }
        self.applied += 1;
        Ok(Actuation {
            applied: true,
            cost_cycles: 0,
            detail: format!(
                "pid {} affinity {} -> {} ({} of {} cpus, {})",
                self.pid,
                cmd.from,
                cmd.to,
                cpus.len(),
                self.baseline.len(),
                cmd.reason
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_structured_on_every_host() {
        // On linux/x86_64 this exercises the real syscalls; elsewhere the
        // stub reports UnsupportedPlatform. Either way: no panic, and the
        // render mentions the verdict.
        let report = AffinityActuator::probe(0);
        let text = report.render();
        assert!(text.contains("sched_getaffinity"));
        assert!(text.contains(if report.usable {
            "USABLE"
        } else {
            "UNAVAILABLE"
        }));
        if !report.get_status.ok() {
            assert!(!report.usable);
            assert!(report.cpus.is_empty());
        }
    }

    #[test]
    fn constructor_matches_probe_verdict() {
        let report = AffinityActuator::probe(0);
        let built = AffinityActuator::new(0, SmtLevel::Smt4);
        assert_eq!(report.usable, built.is_ok());
        if let Ok(a) = built {
            assert_eq!(a.cpus_for(SmtLevel::Smt4).len(), report.cpus.len());
            let at1 = a.cpus_for(SmtLevel::Smt1).len();
            assert!(at1 >= 1 && at1 <= report.cpus.len());
        }
    }

    #[test]
    fn mask_round_trips_cpu_lists() {
        let cpus = vec![0, 3, 8, 63, 130];
        let mask = mask_from_cpus(&cpus);
        assert_eq!(cpus_in_mask(&mask, MASK_BYTES), cpus);
    }

    #[test]
    fn level_to_cpu_count_is_proportional_and_clamped() {
        let a = AffinityActuator {
            pid: 0,
            baseline: (0..8).collect(),
            top: SmtLevel::Smt4,
            applied: 0,
        };
        assert_eq!(a.cpus_for(SmtLevel::Smt4).len(), 8);
        assert_eq!(a.cpus_for(SmtLevel::Smt2).len(), 4);
        assert_eq!(a.cpus_for(SmtLevel::Smt1).len(), 2);
        let tiny = AffinityActuator {
            pid: 0,
            baseline: vec![5],
            top: SmtLevel::Smt4,
            applied: 0,
        };
        assert_eq!(tiny.cpus_for(SmtLevel::Smt1), vec![5], "never empty");
    }

    #[test]
    fn applying_the_current_baseline_is_safe_where_usable() -> Result<(), Error> {
        // Restoring the top level re-applies the baseline mask — a no-op
        // for the process, so the test is safe to run on real hosts.
        if let Ok(mut a) = AffinityActuator::new(0, SmtLevel::Smt4) {
            let r = a.apply(&Command {
                window: 1,
                from: SmtLevel::Smt4,
                to: SmtLevel::Smt4,
                reason: crate::actuator::DecisionReason::Probe,
            })?;
            assert!(r.applied);
            assert_eq!(a.applied(), 1);
        }
        Ok(())
    }
}
