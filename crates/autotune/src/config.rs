//! Loop policy knobs and their environment overrides.
//!
//! Every field of [`AutotuneConfig`] has an `SMT_AUTOTUNE_*` environment
//! override (see [`ENV_KNOBS`]) so deployments can retune the loop without
//! recompiling, the same way `SMT_SIM_ENGINE` selects the simulator's issue
//! engine. Overrides are parsed fallibly: a malformed value is a structured
//! [`Error::Config`], never a panic or a silent default.

use serde::{Deserialize, Serialize};
use smt_sim::Error;

/// Tuning knobs for [`crate::AutotuneLoop`].
///
/// The hysteresis/cooldown pair is what keeps adversarial oscillators from
/// thrashing the actuator: `hysteresis` windows must *agree* before a
/// metric-driven switch, and after any actuation no further switch is
/// issued for `cooldown` windows. The one exception is a phase-memory
/// recall answering a probe — the probe→recall round trip counts as one
/// decision — so the switch rate stays bounded at two per probe interval
/// no matter how hostile the signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutotuneConfig {
    /// Counter-sampling window length in cycles.
    pub window_cycles: u64,
    /// EWMA smoothing factor for the metric sampler (1.0 = none).
    pub alpha: f64,
    /// Consecutive windows that must recommend the same level before a
    /// metric-driven switch.
    pub hysteresis: u64,
    /// Minimum windows between actuated switches (thrash guard).
    pub cooldown: u64,
    /// Windows at the top level before metric recommendations count
    /// toward hysteresis. The first windows after a reconfiguration are
    /// ramp-skewed (cold pipelines, blended EWMA state); acting on them
    /// parks SMT-friendly phases on arrival and poisons the phase memory
    /// with mislabelled levels.
    pub warmup: u64,
    /// While parked below the top level, re-probe the top level after this
    /// many windows even if no phase change is detected.
    pub probe_interval: u64,
    /// Run change-point detection (factor vector at the top level, IPC
    /// while parked) and probe immediately on confirmed phase boundaries.
    pub phase_detect: bool,
    /// Keep a phase memory: revisited phases reuse their learned level
    /// instead of re-proving it through the full hysteresis window.
    pub memory: bool,
    /// Windows a phase must hold steady at the top level before the memory
    /// records "this phase prefers the top level".
    pub settle_windows: u64,
    /// Maximum phases the memory retains (oldest evicted first).
    pub memory_capacity: usize,
}

impl Default for AutotuneConfig {
    fn default() -> AutotuneConfig {
        AutotuneConfig {
            window_cycles: 25_000,
            alpha: 0.6,
            hysteresis: 2,
            cooldown: 4,
            warmup: 3,
            probe_interval: 64,
            phase_detect: true,
            memory: true,
            settle_windows: 6,
            memory_capacity: 64,
        }
    }
}

/// The `SMT_AUTOTUNE_*` environment overrides, as `(name, meaning)` pairs —
/// the CLI prints this table from `--help` so the knobs stay documented in
/// exactly one place.
pub const ENV_KNOBS: &[(&str, &str)] = &[
    ("SMT_AUTOTUNE_WINDOW", "sampling window in cycles (u64 > 0)"),
    ("SMT_AUTOTUNE_ALPHA", "metric EWMA weight in (0,1]"),
    (
        "SMT_AUTOTUNE_HYSTERESIS",
        "agreeing windows before a metric switch (u64 >= 1)",
    ),
    (
        "SMT_AUTOTUNE_COOLDOWN",
        "minimum windows between switches (u64)",
    ),
    (
        "SMT_AUTOTUNE_WARMUP",
        "top-level windows before the metric may switch (u64)",
    ),
    (
        "SMT_AUTOTUNE_PROBE_INTERVAL",
        "parked windows between top-level probes (u64 >= 1)",
    ),
    (
        "SMT_AUTOTUNE_PHASE_DETECT",
        "0/1: change-point detection on the factor vector",
    ),
    (
        "SMT_AUTOTUNE_MEMORY",
        "0/1: reuse learned levels for revisited phases",
    ),
];

fn parse_u64(name: &str, s: &str) -> Result<u64, Error> {
    s.trim()
        .parse()
        .map_err(|_| Error::Config(format!("{name}: expected an unsigned integer, got `{s}`")))
}

fn parse_f64(name: &str, s: &str) -> Result<f64, Error> {
    s.trim()
        .parse()
        .map_err(|_| Error::Config(format!("{name}: expected a number, got `{s}`")))
}

fn parse_bool(name: &str, s: &str) -> Result<bool, Error> {
    match s.trim() {
        "0" | "false" | "off" => Ok(false),
        "1" | "true" | "on" => Ok(true),
        other => Err(Error::Config(format!(
            "{name}: expected 0/1/true/false/on/off, got `{other}`"
        ))),
    }
}

impl AutotuneConfig {
    /// Check the invariants the loop relies on.
    pub fn validate(&self) -> Result<(), Error> {
        if self.window_cycles == 0 {
            return Err(Error::Config("window_cycles must be positive".into()));
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(Error::Config(format!(
                "alpha must be in (0,1], got {}",
                self.alpha
            )));
        }
        if self.hysteresis == 0 {
            return Err(Error::Config("hysteresis must be >= 1".into()));
        }
        if self.probe_interval == 0 {
            return Err(Error::Config("probe_interval must be >= 1".into()));
        }
        if self.memory_capacity == 0 {
            return Err(Error::Config("memory_capacity must be >= 1".into()));
        }
        Ok(())
    }

    /// Overlay any `SMT_AUTOTUNE_*` environment overrides onto `self` and
    /// validate the result. Unset variables keep the current value.
    pub fn from_env(mut self) -> Result<AutotuneConfig, Error> {
        if let Ok(s) = std::env::var("SMT_AUTOTUNE_WINDOW") {
            self.window_cycles = parse_u64("SMT_AUTOTUNE_WINDOW", &s)?;
        }
        if let Ok(s) = std::env::var("SMT_AUTOTUNE_ALPHA") {
            self.alpha = parse_f64("SMT_AUTOTUNE_ALPHA", &s)?;
        }
        if let Ok(s) = std::env::var("SMT_AUTOTUNE_HYSTERESIS") {
            self.hysteresis = parse_u64("SMT_AUTOTUNE_HYSTERESIS", &s)?;
        }
        if let Ok(s) = std::env::var("SMT_AUTOTUNE_COOLDOWN") {
            self.cooldown = parse_u64("SMT_AUTOTUNE_COOLDOWN", &s)?;
        }
        if let Ok(s) = std::env::var("SMT_AUTOTUNE_WARMUP") {
            self.warmup = parse_u64("SMT_AUTOTUNE_WARMUP", &s)?;
        }
        if let Ok(s) = std::env::var("SMT_AUTOTUNE_PROBE_INTERVAL") {
            self.probe_interval = parse_u64("SMT_AUTOTUNE_PROBE_INTERVAL", &s)?;
        }
        if let Ok(s) = std::env::var("SMT_AUTOTUNE_PHASE_DETECT") {
            self.phase_detect = parse_bool("SMT_AUTOTUNE_PHASE_DETECT", &s)?;
        }
        if let Ok(s) = std::env::var("SMT_AUTOTUNE_MEMORY") {
            self.memory = parse_bool("SMT_AUTOTUNE_MEMORY", &s)?;
        }
        self.validate()?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        AutotuneConfig::default().validate().expect("defaults");
    }

    #[test]
    fn invalid_fields_are_config_errors() {
        let bad = AutotuneConfig {
            window_cycles: 0,
            ..AutotuneConfig::default()
        };
        assert!(matches!(bad.validate(), Err(Error::Config(_))));
        let bad = AutotuneConfig {
            alpha: 1.5,
            ..AutotuneConfig::default()
        };
        assert!(matches!(bad.validate(), Err(Error::Config(_))));
        let bad = AutotuneConfig {
            hysteresis: 0,
            ..AutotuneConfig::default()
        };
        assert!(matches!(bad.validate(), Err(Error::Config(_))));
    }

    #[test]
    fn knob_parsers_reject_garbage() {
        assert!(parse_u64("K", "seven").is_err());
        assert!(parse_f64("K", "fast").is_err());
        assert!(parse_bool("K", "maybe").is_err());
        assert!(parse_bool("K", "on").unwrap());
        assert!(!parse_bool("K", "0").unwrap());
        assert_eq!(parse_u64("K", " 42 ").unwrap(), 42);
    }

    #[test]
    fn every_documented_knob_has_a_name() {
        for (name, desc) in ENV_KNOBS {
            assert!(name.starts_with("SMT_AUTOTUNE_"));
            assert!(!desc.is_empty());
        }
    }
}
