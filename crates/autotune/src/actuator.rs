//! The seam between decision and effect.
//!
//! [`crate::AutotuneLoop`] decides; an [`Actuator`] makes the decision
//! *real*. Keeping the seam this narrow — one `apply` call carrying a
//! [`Command`] — is what lets the identical decision core drive three very
//! different effectors: the in-tree simulator ([`SimActuator`], ground
//! truth for regret studies), a structured log ([`DryRunActuator`], safe
//! everywhere and the replay target for golden-file CI), and real Linux
//! CPU affinity ([`crate::AffinityActuator`]).

use serde::{Deserialize, Serialize};
use smt_sim::{Error, Simulation, SmtLevel, Workload};

/// Why the loop issued a command (or logged an event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionReason {
    /// The selector's recommendation survived hysteresis.
    Metric,
    /// Scheduled re-probe of the top level from a parked level.
    Probe,
    /// A change-point detector confirmed a phase boundary.
    PhaseChange,
    /// A remembered phase supplied its learned level without re-probing.
    Recall,
    /// The current phase's settled level was stored into the phase memory.
    Learn,
}

impl std::fmt::Display for DecisionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DecisionReason::Metric => "metric",
            DecisionReason::Probe => "probe",
            DecisionReason::PhaseChange => "phase-change",
            DecisionReason::Recall => "recall",
            DecisionReason::Learn => "learn",
        };
        f.write_str(s)
    }
}

/// One commanded SMT-level change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Global window index (1-based) of the observation that decided this.
    pub window: u64,
    /// Level the machine was running at.
    pub from: SmtLevel,
    /// Level the machine should run at next.
    pub to: SmtLevel,
    /// Why.
    pub reason: DecisionReason,
}

/// What an actuator did with a command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actuation {
    /// The command took effect on the target (false for dry runs).
    pub applied: bool,
    /// Cycles the target spent unavailable while switching (simulator
    /// pipeline drain; 0 where the cost is not observable).
    pub cost_cycles: u64,
    /// Human-readable description of what happened.
    pub detail: String,
}

/// Applies SMT-level decisions to a target.
///
/// Contract: `apply` is called only for commands with `from != to`, in
/// decision order, and must either take effect (or deliberately log-only,
/// reporting `applied: false`) or return a structured error — it must not
/// partially apply. Implementations must be deterministic given the same
/// command sequence wherever the target itself is (the simulator, a log).
pub trait Actuator {
    /// Short identifier (`"sim"`, `"dry-run"`, `"affinity"`).
    fn name(&self) -> &'static str;

    /// Apply one commanded level change.
    fn apply(&mut self, cmd: &Command) -> Result<Actuation, Error>;
}

/// Records every command without touching anything — safe on any host,
/// and the actuator the `.smtc` replay path uses for golden-file diffs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DryRunActuator {
    log: Vec<Command>,
}

impl DryRunActuator {
    /// An empty log.
    pub fn new() -> DryRunActuator {
        DryRunActuator::default()
    }

    /// Commands received so far, in order.
    pub fn log(&self) -> &[Command] {
        &self.log
    }

    /// Consume the actuator, returning its log.
    pub fn into_log(self) -> Vec<Command> {
        self.log
    }
}

impl Actuator for DryRunActuator {
    fn name(&self) -> &'static str {
        "dry-run"
    }

    fn apply(&mut self, cmd: &Command) -> Result<Actuation, Error> {
        self.log.push(*cmd);
        Ok(Actuation {
            applied: false,
            cost_cycles: 0,
            detail: format!("logged {} -> {} ({})", cmd.from, cmd.to, cmd.reason),
        })
    }
}

/// Actuates on an owned [`Simulation`] by reconfiguring its SMT level —
/// the machine really changes, pipelines really drain, so closed-loop runs
/// through this actuator are ground truth for throughput and regret.
pub struct SimActuator<W: Workload> {
    sim: Simulation<W>,
    drain_cycles: u64,
    applied: u64,
}

impl<W: Workload> SimActuator<W> {
    /// Wrap a simulation (typically started at the machine's top level).
    pub fn new(sim: Simulation<W>) -> SimActuator<W> {
        SimActuator {
            sim,
            drain_cycles: 0,
            applied: 0,
        }
    }

    /// Read-only view of the simulated machine.
    pub fn sim(&self) -> &Simulation<W> {
        &self.sim
    }

    /// The simulated machine.
    pub fn sim_mut(&mut self) -> &mut Simulation<W> {
        &mut self.sim
    }

    /// Total cycles spent draining pipelines across all reconfigurations.
    pub fn drain_cycles(&self) -> u64 {
        self.drain_cycles
    }

    /// Commands applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }
}

impl<W: Workload> Actuator for SimActuator<W> {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn apply(&mut self, cmd: &Command) -> Result<Actuation, Error> {
        if !self.sim.config().smt_levels().contains(&cmd.to) {
            return Err(Error::MissingLevel {
                benchmark: self.sim.workload().name().to_string(),
                level: cmd.to,
            });
        }
        let drained = self.sim.reconfigure(cmd.to);
        self.drain_cycles += drained;
        self.applied += 1;
        Ok(Actuation {
            applied: true,
            cost_cycles: drained,
            detail: format!(
                "reconfigured {} -> {} ({}), drained {drained} cycles",
                cmd.from, cmd.to, cmd.reason
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_sim::MachineConfig;
    use smt_workloads::{catalog, SyntheticWorkload};

    fn cmd(to: SmtLevel) -> Command {
        Command {
            window: 1,
            from: SmtLevel::Smt4,
            to,
            reason: DecisionReason::Metric,
        }
    }

    #[test]
    fn dry_run_logs_in_order_and_touches_nothing() -> Result<(), Error> {
        let mut a = DryRunActuator::new();
        let r = a.apply(&cmd(SmtLevel::Smt1))?;
        assert!(!r.applied);
        assert_eq!(r.cost_cycles, 0);
        a.apply(&cmd(SmtLevel::Smt2))?;
        let log = a.into_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].to, SmtLevel::Smt1);
        assert_eq!(log[1].to, SmtLevel::Smt2);
        Ok(())
    }

    #[test]
    fn sim_actuator_reconfigures_the_machine() -> Result<(), Error> {
        let sim = Simulation::new(
            MachineConfig::power7(1),
            SmtLevel::Smt4,
            SyntheticWorkload::new(catalog::ep().scaled(0.05)),
        );
        let mut a = SimActuator::new(sim);
        a.sim_mut().run_cycles(10_000);
        let r = a.apply(&cmd(SmtLevel::Smt1))?;
        assert!(r.applied);
        assert_eq!(a.sim().smt(), SmtLevel::Smt1);
        assert_eq!(a.applied(), 1);
        Ok(())
    }

    #[test]
    fn sim_actuator_rejects_unsupported_levels() {
        let sim = Simulation::new(
            MachineConfig::nehalem(),
            SmtLevel::Smt2,
            SyntheticWorkload::new(catalog::ep().scaled(0.05)),
        );
        let mut a = SimActuator::new(sim);
        assert!(matches!(
            a.apply(&cmd(SmtLevel::Smt4)),
            Err(Error::MissingLevel { .. })
        ));
    }
}
