//! Architecture descriptors: issue-port topology, pipeline widths, SMT
//! levels, and execution latencies.
//!
//! The SMT-selection metric is parameterized by the *issue-port structure*
//! of the target core (Section II of the paper). [`ArchDescriptor`] captures
//! exactly that structure; the simulator executes against it and the metric
//! crate derives the ideal SMT instruction mix from it.

use crate::branch::BranchPredictorConfig;
use crate::error::Error;
use crate::isa::{InstrClass, NUM_CLASSES};
use serde::{Deserialize, Serialize};

/// An SMT level: how many hardware contexts share one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SmtLevel {
    /// One hardware thread per core (SMT disabled).
    Smt1,
    /// Two-way SMT.
    Smt2,
    /// Four-way SMT.
    Smt4,
}

impl SmtLevel {
    /// All levels, lowest first.
    pub const ALL: [SmtLevel; 3] = [SmtLevel::Smt1, SmtLevel::Smt2, SmtLevel::Smt4];

    /// Number of hardware contexts per core at this level.
    #[inline]
    pub fn ways(self) -> usize {
        match self {
            SmtLevel::Smt1 => 1,
            SmtLevel::Smt2 => 2,
            SmtLevel::Smt4 => 4,
        }
    }

    /// Level with the given number of ways, if it is one we model.
    pub fn from_ways(ways: usize) -> Option<SmtLevel> {
        match ways {
            1 => Some(SmtLevel::Smt1),
            2 => Some(SmtLevel::Smt2),
            4 => Some(SmtLevel::Smt4),
            _ => None,
        }
    }

    /// Levels supported by a core whose maximum is `max`, lowest first.
    pub fn up_to(max: SmtLevel) -> Vec<SmtLevel> {
        SmtLevel::ALL
            .iter()
            .copied()
            .filter(|l| *l <= max)
            .collect()
    }
}

impl std::fmt::Display for SmtLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SMT{}", self.ways())
    }
}

/// How per-thread shares of shared structures (fetch buffer, issue
/// queues, in-flight window) are assigned at SMT2/SMT4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Partitioning {
    /// No caps: any thread may fill any structure completely. (Ablation
    /// mode; real SMT cores do not ship like this because one stalled
    /// thread would starve its siblings.)
    None,
    /// Shares fixed by the configured SMT level (`capacity/ways + 1`).
    Static,
    /// Shares track the number of *currently runnable* threads, so a lone
    /// running thread gets the whole core — POWER7's dynamic SMT-mode
    /// behaviour (a core with one runnable thread acts like SMT1).
    Dynamic,
}

/// An issue queue feeding one or more ports.
#[derive(Debug, Clone, Serialize)]
pub struct QueueDesc {
    /// Human-readable name ("UQ0", "RS", ...).
    pub name: &'static str,
    /// Total entries in the queue.
    pub capacity: usize,
}

/// One issue port: the pathway through which at most one instruction per
/// cycle is issued to a functional unit.
#[derive(Debug, Clone, Serialize)]
pub struct PortDesc {
    /// Human-readable name ("LS0", "FX1", "P0", ...).
    pub name: &'static str,
    /// Index of the queue this port pulls from.
    pub queue: usize,
    /// Instruction classes this port can issue.
    pub accepts: Vec<InstrClass>,
    /// A port that is consumed *together* with this one when a store issues
    /// (Nehalem issues a store as store-address on port 3 plus store-data on
    /// port 4). `None` for ordinary ports.
    pub store_pair: Option<usize>,
}

impl PortDesc {
    fn new(name: &'static str, queue: usize, accepts: &[InstrClass]) -> PortDesc {
        PortDesc {
            name,
            queue,
            accepts: accepts.to_vec(),
            store_pair: None,
        }
    }

    /// Whether the port can issue the given class.
    #[inline]
    pub fn accepts(&self, class: InstrClass) -> bool {
        self.accepts.contains(&class)
    }
}

/// Fixed execution latencies for non-memory classes (loads get theirs from
/// the cache hierarchy; stores complete at `store` and retire the memory
/// traffic asynchronously).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Latencies {
    /// Fixed-point ALU latency.
    pub fixed_point: u64,
    /// Vector-scalar / floating-point pipeline latency.
    pub vector_scalar: u64,
    /// Branch resolution latency.
    pub branch: u64,
    /// Condition-register op latency.
    pub cond_reg: u64,
    /// Store completion latency (address generation + queue insert).
    pub store: u64,
}

/// A complete core description.
#[derive(Debug, Clone, Serialize)]
pub struct ArchDescriptor {
    /// Architecture name ("power7-like", "nehalem-like").
    pub name: &'static str,
    /// Instructions fetched per cycle (from one hardware thread, round-robin).
    pub fetch_width: usize,
    /// Instructions dispatched (ibuffer -> issue queues) per cycle, shared
    /// across hardware threads.
    pub dispatch_width: usize,
    /// Per-hardware-thread instruction (fetch) buffer capacity at SMT1; at
    /// higher SMT levels the buffer is partitioned among threads.
    pub ibuf_capacity: usize,
    /// Issue queues.
    pub queues: Vec<QueueDesc>,
    /// Issue ports.
    pub ports: Vec<PortDesc>,
    /// Highest SMT level the core supports.
    pub max_smt: SmtLevel,
    /// Execution latencies.
    pub latencies: Latencies,
    /// Cycles of fetch bubble after a mispredicted branch resolves.
    pub mispredict_penalty: u64,
    /// How many queue entries (oldest-first) each port considers per cycle;
    /// models the limited wakeup/select bandwidth of a real scheduler.
    pub issue_scan_depth: usize,
    /// Per-core load-miss-queue (MSHR) capacity: maximum loads outstanding
    /// past the L1 at once, shared by the core's hardware threads. When the
    /// LMQ is full further missing loads cannot issue, which backs pressure
    /// up into the issue queues and ultimately holds dispatch — the
    /// mechanism by which memory-bandwidth saturation surfaces in the
    /// DispHeld factor of the metric.
    pub lmq_capacity: usize,
    /// Per-thread in-flight window (dispatched but not yet issued), the
    /// reorder-buffer / global-completion-table analogue. Partitioned
    /// across threads like the queues. Must stay <= 128 so the dependency
    /// ring stays sound.
    pub rob_window: usize,
    /// Optional gshare branch-predictor model, shared per core. `None`
    /// (the default) takes misprediction flags from the workload — the
    /// calibrated reproduction mode; `Some` makes misprediction *emerge*
    /// from PC/outcome streams, including cross-thread table aliasing.
    pub branch_predictor: Option<BranchPredictorConfig>,
    /// Per-thread share policy for shared structures at SMT2/SMT4.
    /// `Dynamic` matches POWER7 most closely; `Static` is the conservative
    /// default used in the evaluation (it also stands in for the software
    /// cost of oversubscribing threads); `None` is for ablations.
    pub partitioning: Partitioning,
}

impl ArchDescriptor {
    /// POWER7-like core (Fig. 4): 8-wide fetch, 6-wide dispatch, 8 issue
    /// ports — CR, BR, and two unified queues each feeding one load/store,
    /// one fixed-point, and one vector-scalar port. Supports SMT4.
    pub fn power7() -> ArchDescriptor {
        use InstrClass::*;
        ArchDescriptor {
            name: "power7-like",
            fetch_width: 8,
            dispatch_width: 6,
            ibuf_capacity: 24,
            queues: vec![
                QueueDesc {
                    name: "CRQ",
                    capacity: 8,
                },
                QueueDesc {
                    name: "BRQ",
                    capacity: 12,
                },
                QueueDesc {
                    name: "UQ0",
                    capacity: 24,
                },
                QueueDesc {
                    name: "UQ1",
                    capacity: 24,
                },
            ],
            ports: vec![
                PortDesc::new("CR", 0, &[CondReg]),
                PortDesc::new("BR", 1, &[Branch]),
                PortDesc::new("LS0", 2, &[Load, Store]),
                PortDesc::new("FX0", 2, &[FixedPoint]),
                PortDesc::new("VS0", 2, &[VectorScalar]),
                PortDesc::new("LS1", 3, &[Load, Store]),
                PortDesc::new("FX1", 3, &[FixedPoint]),
                PortDesc::new("VS1", 3, &[VectorScalar]),
            ],
            max_smt: SmtLevel::Smt4,
            latencies: Latencies {
                fixed_point: 1,
                vector_scalar: 6,
                branch: 1,
                cond_reg: 1,
                store: 1,
            },
            mispredict_penalty: 12,
            issue_scan_depth: 24,
            lmq_capacity: 16,
            rob_window: 128,
            branch_predictor: None,
            partitioning: Partitioning::Static,
        }
    }

    /// Nehalem-like core (Fig. 5): 4-wide front end, one 36-entry unified
    /// reservation station feeding 6 ports — three computational (0, 1, 5)
    /// and three memory (2 load, 3 store-address, 4 store-data). Supports
    /// SMT2. A store consumes ports 3 and 4 together.
    pub fn nehalem() -> ArchDescriptor {
        use InstrClass::*;
        let mut ports = vec![
            PortDesc::new("P0", 0, &[FixedPoint, VectorScalar, CondReg]),
            PortDesc::new("P1", 0, &[FixedPoint, VectorScalar, CondReg]),
            PortDesc::new("P2", 0, &[Load]),
            PortDesc::new("P3", 0, &[Store]),
            PortDesc::new("P4", 0, &[]),
            PortDesc::new("P5", 0, &[FixedPoint, Branch, CondReg]),
        ];
        ports[3].store_pair = Some(4);
        ArchDescriptor {
            name: "nehalem-like",
            fetch_width: 4,
            dispatch_width: 4,
            ibuf_capacity: 16,
            queues: vec![QueueDesc {
                name: "RS",
                capacity: 36,
            }],
            ports,
            max_smt: SmtLevel::Smt2,
            latencies: Latencies {
                fixed_point: 1,
                vector_scalar: 4,
                branch: 1,
                cond_reg: 1,
                store: 1,
            },
            mispredict_penalty: 15,
            issue_scan_depth: 36,
            lmq_capacity: 10,
            rob_window: 128,
            branch_predictor: None,
            partitioning: Partitioning::Static,
        }
    }

    /// POWER5-like core: the paper's historical lead-in (the first POWER
    /// SMT design, Kalla et al. 2004). Two-way SMT, narrower than POWER7:
    /// 5-wide fetch/dispatch, two FX, two LS, two FP ports plus BR/CR,
    /// smaller queues and windows.
    pub fn power5() -> ArchDescriptor {
        use InstrClass::*;
        ArchDescriptor {
            name: "power5-like",
            fetch_width: 5,
            dispatch_width: 5,
            ibuf_capacity: 16,
            queues: vec![
                QueueDesc {
                    name: "CRQ",
                    capacity: 6,
                },
                QueueDesc {
                    name: "BRQ",
                    capacity: 10,
                },
                QueueDesc {
                    name: "FXQ",
                    capacity: 18,
                },
                QueueDesc {
                    name: "LSQ",
                    capacity: 18,
                },
                QueueDesc {
                    name: "FPQ",
                    capacity: 18,
                },
            ],
            ports: vec![
                PortDesc::new("CR", 0, &[CondReg]),
                PortDesc::new("BR", 1, &[Branch]),
                PortDesc::new("FX0", 2, &[FixedPoint]),
                PortDesc::new("FX1", 2, &[FixedPoint]),
                PortDesc::new("LS0", 3, &[Load, Store]),
                PortDesc::new("LS1", 3, &[Load, Store]),
                PortDesc::new("FP0", 4, &[VectorScalar]),
                PortDesc::new("FP1", 4, &[VectorScalar]),
            ],
            max_smt: SmtLevel::Smt2,
            latencies: Latencies {
                fixed_point: 1,
                vector_scalar: 6,
                branch: 1,
                cond_reg: 1,
                store: 1,
            },
            mispredict_penalty: 12,
            issue_scan_depth: 18,
            lmq_capacity: 8,
            rob_window: 100,
            branch_predictor: None,
            partitioning: Partitioning::Static,
        }
    }

    /// The generic textbook core of the paper's Fig. 3: N identical-kind
    /// ports behind one queue, used in unit tests and the quickstart example.
    pub fn generic() -> ArchDescriptor {
        use InstrClass::*;
        ArchDescriptor {
            name: "generic",
            fetch_width: 4,
            dispatch_width: 4,
            ibuf_capacity: 16,
            queues: vec![QueueDesc {
                name: "IQ",
                capacity: 24,
            }],
            ports: vec![
                PortDesc::new("LS", 0, &[Load, Store]),
                PortDesc::new("BR", 0, &[Branch, CondReg]),
                PortDesc::new("EX0", 0, &[FixedPoint]),
                PortDesc::new("EX1", 0, &[VectorScalar]),
            ],
            max_smt: SmtLevel::Smt2,
            latencies: Latencies {
                fixed_point: 1,
                vector_scalar: 4,
                branch: 1,
                cond_reg: 1,
                store: 1,
            },
            mispredict_penalty: 10,
            issue_scan_depth: 24,
            lmq_capacity: 8,
            rob_window: 96,
            branch_predictor: None,
            partitioning: Partitioning::Static,
        }
    }

    /// Number of issue ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Precomputed port-acceptance table: for each instruction class, a
    /// bitmask of the ports that can issue it (bit `p` set means
    /// `ports[p].accepts(class)`). Built once per core so the per-cycle
    /// issue and congestion scans test a bit instead of walking each
    /// port's accept list. The word-parallel SoA issue engine (DESIGN.md
    /// §3.13) leans on this further: port selection is
    /// `accepts & queue_ports & !used` followed by `trailing_zeros`,
    /// which is only equivalent to the reference walk because each
    /// queue's port list is stored in ascending index order.
    pub fn class_port_masks(&self) -> [u32; NUM_CLASSES] {
        debug_assert!(self.ports.len() <= 32, "port mask is a u32");
        let mut masks = [0u32; NUM_CLASSES];
        for (pi, port) in self.ports.iter().enumerate() {
            for &class in &port.accepts {
                masks[class.index()] |= 1 << pi;
            }
        }
        masks
    }

    /// Latency of a non-load class.
    pub fn latency_of(&self, class: InstrClass) -> u64 {
        match class {
            InstrClass::FixedPoint => self.latencies.fixed_point,
            InstrClass::VectorScalar => self.latencies.vector_scalar,
            InstrClass::Branch => self.latencies.branch,
            InstrClass::CondReg => self.latencies.cond_reg,
            InstrClass::Store => self.latencies.store,
            InstrClass::Load => panic!("load latency comes from the cache hierarchy"),
        }
    }

    /// Per-thread occupancy cap for a structure of `capacity` entries when
    /// `sharers` hardware threads share the core (the configured ways for
    /// `Static`, the currently runnable count for `Dynamic`). A thread may
    /// use its proportional share plus a small slack entry; with
    /// [`Partitioning::None`] every thread may fill the whole structure.
    pub fn per_thread_cap(&self, capacity: usize, sharers: usize) -> usize {
        if self.partitioning == Partitioning::None || sharers <= 1 {
            return capacity;
        }
        (capacity / sharers + 1).min(capacity)
    }

    /// Validate internal consistency; used by tests and on machine build.
    pub fn validate(&self) -> Result<(), Error> {
        let invalid = |msg: String| Err(Error::InvalidMachine(msg));
        if self.fetch_width == 0 || self.dispatch_width == 0 {
            return invalid("zero pipeline width".into());
        }
        if self.queues.is_empty() || self.ports.is_empty() {
            return invalid("no queues or ports".into());
        }
        if self.rob_window == 0 || self.rob_window > 128 {
            return invalid("rob_window must be in 1..=128 (dependency-ring bound)".into());
        }
        if self.lmq_capacity == 0 {
            return invalid("lmq_capacity must be nonzero".into());
        }
        for p in &self.ports {
            if p.queue >= self.queues.len() {
                return invalid(format!(
                    "port {} references missing queue {}",
                    p.name, p.queue
                ));
            }
            if let Some(pair) = p.store_pair {
                if pair >= self.ports.len() {
                    return invalid(format!("port {} store_pair out of range", p.name));
                }
            }
        }
        // Every class must be issuable somewhere, except classes that no
        // workload emits on this arch; we require full coverage to keep
        // workloads architecture-agnostic.
        for class in InstrClass::ALL {
            if !self.ports.iter().any(|p| p.accepts(class)) {
                return invalid(format!("class {class:?} has no issue port"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smt_level_ways_roundtrip() {
        for l in SmtLevel::ALL {
            assert_eq!(SmtLevel::from_ways(l.ways()), Some(l));
        }
        assert_eq!(SmtLevel::from_ways(3), None);
        assert_eq!(SmtLevel::from_ways(8), None);
    }

    #[test]
    fn smt_level_ordering_and_up_to() {
        assert!(SmtLevel::Smt1 < SmtLevel::Smt2);
        assert!(SmtLevel::Smt2 < SmtLevel::Smt4);
        assert_eq!(
            SmtLevel::up_to(SmtLevel::Smt2),
            vec![SmtLevel::Smt1, SmtLevel::Smt2]
        );
        assert_eq!(SmtLevel::up_to(SmtLevel::Smt4).len(), 3);
    }

    #[test]
    fn smt_level_display() {
        assert_eq!(SmtLevel::Smt4.to_string(), "SMT4");
        assert_eq!(SmtLevel::Smt1.to_string(), "SMT1");
    }

    #[test]
    fn power7_is_valid_and_has_eight_ports() {
        let a = ArchDescriptor::power7();
        a.validate().unwrap();
        assert_eq!(a.num_ports(), 8);
        assert_eq!(a.max_smt, SmtLevel::Smt4);
        // Two LS, two FX, two VS ports as in Fig. 4.
        let count = |c: InstrClass| a.ports.iter().filter(|p| p.accepts(c)).count();
        assert_eq!(count(InstrClass::Load), 2);
        assert_eq!(count(InstrClass::FixedPoint), 2);
        assert_eq!(count(InstrClass::VectorScalar), 2);
        assert_eq!(count(InstrClass::Branch), 1);
        assert_eq!(count(InstrClass::CondReg), 1);
    }

    #[test]
    fn nehalem_is_valid_with_store_pairing() {
        let a = ArchDescriptor::nehalem();
        a.validate().unwrap();
        assert_eq!(a.num_ports(), 6);
        assert_eq!(a.max_smt, SmtLevel::Smt2);
        assert_eq!(a.ports[3].store_pair, Some(4));
        // Integer ALU available on three ports, as on real Nehalem.
        let fx = a
            .ports
            .iter()
            .filter(|p| p.accepts(InstrClass::FixedPoint))
            .count();
        assert_eq!(fx, 3);
    }

    #[test]
    fn generic_is_valid() {
        ArchDescriptor::generic().validate().unwrap();
    }

    #[test]
    fn power5_is_valid_smt2_with_split_queues() {
        let a = ArchDescriptor::power5();
        a.validate().unwrap();
        assert_eq!(a.max_smt, SmtLevel::Smt2);
        assert_eq!(a.num_ports(), 8);
        assert_eq!(a.queues.len(), 5);
    }

    #[test]
    fn per_thread_cap_partitions() {
        let a = ArchDescriptor::power7();
        assert_eq!(a.per_thread_cap(24, 1), 24);
        assert_eq!(a.per_thread_cap(24, 2), 13);
        assert_eq!(a.per_thread_cap(24, 4), 7);
    }

    #[test]
    fn per_thread_cap_without_partitioning() {
        let mut a = ArchDescriptor::power7();
        a.partitioning = Partitioning::None;
        assert_eq!(a.per_thread_cap(24, 4), 24);
    }

    #[test]
    fn validate_rejects_bad_port_queue() {
        let mut a = ArchDescriptor::generic();
        a.ports[0].queue = 99;
        assert!(a.validate().is_err());
    }

    #[test]
    fn validate_rejects_uncovered_class() {
        let mut a = ArchDescriptor::generic();
        a.ports.retain(|p| !p.accepts(InstrClass::VectorScalar));
        assert!(a.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "cache hierarchy")]
    fn load_latency_panics() {
        ArchDescriptor::power7().latency_of(InstrClass::Load);
    }
}
