//! Branch prediction model.
//!
//! By default the simulator takes misprediction *rates* from the workload
//! (each branch carries a pre-rolled `mispredict` flag), which is the
//! right tool for calibrated reproduction. For substrate completeness the
//! machine can instead run a real **gshare** predictor — two-bit counters
//! indexed by PC xor global history — shared by the hardware threads of a
//! core, as on POWER7 and Nehalem. Sharing is the interesting part for
//! this paper: co-resident threads alias each other's table entries and
//! pollute the global history, one of the shared-resource contention
//! channels Section I lists.
//!
//! Enable by setting [`crate::ArchDescriptor::branch_predictor`]; the
//! workload must then supply meaningful PCs and `taken` outcomes (the
//! synthetic generator derives per-branch biases from the PC, so loop
//! branches are predictable and data-dependent ones are not).

use serde::{Deserialize, Serialize};

/// Geometry of a gshare predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPredictorConfig {
    /// log2 of the two-bit-counter table size.
    pub table_bits: u8,
    /// Global-history bits xored into the index.
    pub history_bits: u8,
}

impl BranchPredictorConfig {
    /// A modest core-sized predictor (4096 counters, 8 history bits).
    pub fn default_core() -> BranchPredictorConfig {
        BranchPredictorConfig {
            table_bits: 12,
            history_bits: 8,
        }
    }
}

/// A gshare predictor: two-bit saturating counters indexed by
/// `pc ^ history`.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
    history: u64,
    index_mask: u64,
    history_mask: u64,
    /// Predictions made.
    pub predictions: u64,
    /// Mispredictions observed.
    pub mispredictions: u64,
}

impl BranchPredictor {
    /// Build an empty predictor (counters start weakly not-taken).
    pub fn new(cfg: BranchPredictorConfig) -> BranchPredictor {
        assert!(
            cfg.table_bits >= 4 && cfg.table_bits <= 24,
            "table 16..16M entries"
        );
        assert!(cfg.history_bits as u32 <= 32);
        BranchPredictor {
            table: vec![1; 1 << cfg.table_bits], // weakly not-taken
            history: 0,
            index_mask: (1u64 << cfg.table_bits) - 1,
            history_mask: if cfg.history_bits == 0 {
                0
            } else {
                (1u64 << cfg.history_bits) - 1
            },
            predictions: 0,
            mispredictions: 0,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.index_mask) as usize
    }

    /// Predict the branch at `pc`, then update with the actual outcome.
    /// Returns `true` when the prediction was wrong.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let counter = self.table[idx];
        let predicted_taken = counter >= 2;
        let mispredicted = predicted_taken != taken;
        // Saturating two-bit update.
        self.table[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        self.history = ((self.history << 1) | u64::from(taken)) & self.history_mask;
        self.predictions += 1;
        self.mispredictions += u64::from(mispredicted);
        mispredicted
    }

    /// Observed misprediction rate so far.
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(BranchPredictorConfig::default_core())
    }

    #[test]
    fn learns_an_always_taken_branch() {
        let mut p = predictor();
        let mut misses = 0;
        for _ in 0..1000 {
            if p.predict_and_update(0x4000, true) {
                misses += 1;
            }
        }
        // The first ~history-length iterations walk distinct gshare
        // indices; after that the branch is learned.
        assert!(
            misses <= 12,
            "always-taken branch should be learned: {misses}"
        );
    }

    #[test]
    fn learns_a_loop_pattern() {
        // taken x7, not-taken x1 (an 8-iteration loop): gshare with enough
        // history learns the exit.
        let mut p = predictor();
        let mut misses_late = 0;
        for k in 0..4000u64 {
            let taken = k % 8 != 7;
            let miss = p.predict_and_update(0x1234, taken);
            if k >= 2000 && miss {
                misses_late += 1;
            }
        }
        let rate = misses_late as f64 / 2000.0;
        assert!(rate < 0.05, "loop pattern should be learned: {rate}");
    }

    #[test]
    fn random_branches_stay_hard() {
        // A deterministic pseudo-random sequence: ~50% miss rate expected.
        let mut p = predictor();
        let mut x = 0x1357_9bdfu64;
        let mut misses = 0;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if p.predict_and_update(0x8888, x & 1 == 1) {
                misses += 1;
            }
        }
        let rate = misses as f64 / 4000.0;
        assert!(
            (0.35..=0.65).contains(&rate),
            "random branches ~50%: {rate}"
        );
    }

    #[test]
    fn aliasing_between_streams_hurts() {
        // Two perfectly-biased branches that alias (tiny table) interfere;
        // with a large table they do not.
        let run = |bits: u8| {
            let mut p = BranchPredictor::new(BranchPredictorConfig {
                table_bits: bits,
                history_bits: 0,
            });
            let mut misses = 0;
            for k in 0..2000u64 {
                // Branch A at pc 0x10 always taken; branch B aliased to the
                // same slot (for a 4-bit table) always not-taken.
                let (pc, taken) = if k % 2 == 0 {
                    (0x10u64, true)
                } else {
                    (0x10 + (1 << 8), false)
                };
                if p.predict_and_update(pc, taken) {
                    misses += 1;
                }
            }
            misses as f64 / 2000.0
        };
        let small = run(4);
        let big = run(14);
        assert!(big < 0.02, "no aliasing in a big table: {big}");
        assert!(small > big + 0.3, "aliasing must hurt: {small} vs {big}");
    }

    #[test]
    fn miss_rate_reporting() {
        let mut p = predictor();
        assert_eq!(p.miss_rate(), 0.0);
        for _ in 0..200 {
            p.predict_and_update(0x40, true);
        }
        assert!(p.miss_rate() <= 0.1, "rate {}", p.miss_rate());
        assert_eq!(p.predictions, 200);
    }
}
