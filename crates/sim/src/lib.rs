//! `smt-sim`: a cycle-level simultaneous-multithreading CPU simulator.
//!
//! This crate is the hardware substrate for the `smt-select` reproduction of
//! *"An SMT-Selection Metric to Improve Multithreaded Applications'
//! Performance"* (Funston et al., IPDPS 2012). The paper evaluates its
//! metric on real POWER7 and Nehalem machines; this simulator stands in for
//! that hardware, modeling exactly the structures the metric depends on:
//!
//! - **issue ports and issue queues** ([`arch`]): the per-class port layout
//!   that defines the *ideal SMT instruction mix*;
//! - **dispatch-held accounting** ([`core`]): the
//!   `PM_DISP_CLB_HELD_RES`-style event behind the metric's second factor;
//! - **SMT resource partitioning** ([`core`]): per-thread shares of fetch
//!   buffers, issue queues, and the in-flight window at SMT2/SMT4;
//! - **caches and finite memory bandwidth** ([`cache`]): latency hiding
//!   (where SMT wins) versus bandwidth saturation (where it loses);
//! - **multi-chip NUMA** ([`cache`], [`machine`]): the two-chip POWER7
//!   experiments;
//! - **hardware performance counters** ([`counters`]): the PMU facade the
//!   metric samples online.
//!
//! # Quick start
//!
//! ```
//! use smt_sim::{MachineConfig, Simulation, SmtLevel, ScriptedWorkload, Instr, InstrClass};
//!
//! let script: Vec<Instr> = (0..100).map(|_| Instr::simple(InstrClass::FixedPoint)).collect();
//! let mut workload = ScriptedWorkload::new("demo", script);
//! let mut sim = Simulation::new(MachineConfig::generic(2), SmtLevel::Smt2, workload);
//! let result = sim.run_until_finished(100_000);
//! assert!(result.completed);
//! ```

#![warn(missing_docs)]

pub mod arch;
pub mod branch;
pub mod cache;
pub mod core;
pub mod counters;
pub mod error;
pub mod isa;
pub mod machine;
pub mod profile;
pub mod soa;
pub mod workload;

pub use arch::{ArchDescriptor, Latencies, Partitioning, PortDesc, QueueDesc, SmtLevel};
pub use branch::{BranchPredictor, BranchPredictorConfig};
pub use cache::{AccessOutcome, Cache, CacheConfig, MemConfig, MemoryController, MemorySystem};
pub use counters::{CoreCounters, ThreadCounters, WindowMeasurement};
pub use error::Error;
pub use isa::{Fetched, Instr, InstrBlock, InstrClass, DEP_WINDOW, NUM_CLASSES};
pub use machine::{MachineConfig, RunResult, Simulation, Stepping};
pub use profile::{ticks_per_sec, PhaseProfile};
pub use soa::{simd_available, IssueEngine, ScanKernel};
pub use workload::{ScriptedWorkload, Workload};
