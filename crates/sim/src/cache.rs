//! Cache hierarchy and memory-bandwidth model.
//!
//! Each core owns a private L1D and L2; each chip owns a shared L3 and a
//! memory controller with finite bandwidth. The controller models bandwidth
//! as a service rate: each cache-line request occupies the channel for
//! `line_bytes / bytes_per_cycle` cycles, so when demand exceeds the service
//! rate, requests queue and observed memory latency grows without bound —
//! exactly the "intensive use of the memory system" contention mode the
//! paper lists as an SMT anti-pattern (Section I).
//!
//! On multi-chip machines an access flagged `remote` is serviced by the
//! *other* chip's controller with an additional cross-chip latency,
//! providing the NUMA effects of the paper's two-chip experiments
//! (Figs. 13-15).

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
    /// Hit latency in cycles (total latency to return data from this level).
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry (at least 1).
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        ((lines as usize) / self.assoc).max(1)
    }
}

/// Memory (DRAM) parameters for one chip.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemConfig {
    /// Unloaded memory latency in cycles.
    pub latency: u64,
    /// Sustained bandwidth: bytes transferable per core cycle, shared by
    /// all cores on the chip.
    pub bytes_per_cycle: f64,
    /// Extra latency for a request homed on a remote chip.
    pub remote_extra_latency: u64,
}

/// A set-associative, LRU, tag-only cache. `true` return values are hits.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Per-set tag stacks, most-recently-used first.
    sets: Vec<Vec<u64>>,
    assoc: usize,
    line_shift: u32,
    num_sets: u64,
    /// Hit latency.
    pub latency: u64,
    /// Accesses observed (for diagnostics).
    pub accesses: u64,
    /// Misses observed.
    pub misses: u64,
}

impl Cache {
    /// Build an empty cache from its configuration.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.assoc > 0, "associativity must be nonzero");
        let num_sets = cfg.num_sets();
        Cache {
            sets: vec![Vec::with_capacity(cfg.assoc); num_sets],
            assoc: cfg.assoc,
            line_shift: cfg.line_bytes.trailing_zeros(),
            num_sets: num_sets as u64,
            latency: cfg.latency,
            accesses: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line % self.num_sets) as usize, line / self.num_sets)
    }

    /// Probe without filling or updating recency: used to decide whether a
    /// load needs a load-miss-queue slot before committing to the access.
    #[inline]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].contains(&tag)
    }

    /// Access `addr`: returns `true` on hit. On miss the line is filled
    /// (allocate-on-miss for both loads and stores), evicting the LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.accesses += 1;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = ways.remove(pos);
            ways.insert(0, t);
            true
        } else {
            self.misses += 1;
            ways.insert(0, tag);
            if ways.len() > self.assoc {
                ways.pop();
            }
            false
        }
    }

    /// Forget all contents (used when reconfiguration should start cold).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

/// Finite-bandwidth memory channel for one chip.
#[derive(Debug, Clone)]
pub struct MemoryController {
    /// Cycle (fractional) at which the channel next becomes free.
    next_free: f64,
    /// Channel occupancy per line request.
    cycles_per_request: f64,
    /// Unloaded latency.
    latency: u64,
    /// Extra cycles when the requester sits on another chip.
    remote_extra: u64,
    /// Requests served.
    pub requests: u64,
}

impl MemoryController {
    /// Build a controller from memory parameters and the L3 line size
    /// (requests are line-sized).
    pub fn new(mem: MemConfig, line_bytes: u64) -> MemoryController {
        assert!(
            mem.bytes_per_cycle > 0.0,
            "memory bandwidth must be positive"
        );
        MemoryController {
            next_free: 0.0,
            cycles_per_request: line_bytes as f64 / mem.bytes_per_cycle,
            latency: mem.latency,
            remote_extra: mem.remote_extra_latency,
            requests: 0,
        }
    }

    /// Service one line request issued at `now`; returns the absolute cycle
    /// at which data arrives. Queueing delay is `start - now`.
    pub fn service(&mut self, now: u64, from_remote_chip: bool) -> u64 {
        let start = self.next_free.max(now as f64);
        self.next_free = start + self.cycles_per_request;
        self.requests += 1;
        start as u64
            + self.latency
            + if from_remote_chip {
                self.remote_extra
            } else {
                0
            }
    }

    /// Current queueing delay a request issued at `now` would see.
    pub fn backlog(&self, now: u64) -> u64 {
        (self.next_free - now as f64).max(0.0) as u64
    }
}

/// Outcome of a memory access walked through the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycles until the data is available (0-based from issue cycle).
    pub latency: u64,
    /// Missed in L1D.
    pub l1_miss: bool,
    /// Missed in L2.
    pub l2_miss: bool,
    /// Missed in L3 (went to memory).
    pub l3_miss: bool,
    /// Request was serviced by a remote chip's controller.
    pub remote: bool,
}

/// The full memory system of a machine: per-core L1/L2, per-chip L3 and
/// memory controller.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l1: Vec<Cache>,
    l1i: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Vec<Cache>,
    ctrl: Vec<MemoryController>,
    cores_per_chip: usize,
    line_bytes: u64,
}

impl MemorySystem {
    /// Build caches for `chips * cores_per_chip` cores.
    pub fn new(
        chips: usize,
        cores_per_chip: usize,
        l1: CacheConfig,
        l2: CacheConfig,
        l3: CacheConfig,
        mem: MemConfig,
    ) -> MemorySystem {
        Self::with_icache(chips, cores_per_chip, l1, l1, l2, l3, mem)
    }

    /// Build with a distinct instruction-cache geometry.
    pub fn with_icache(
        chips: usize,
        cores_per_chip: usize,
        l1: CacheConfig,
        l1i: CacheConfig,
        l2: CacheConfig,
        l3: CacheConfig,
        mem: MemConfig,
    ) -> MemorySystem {
        assert!(chips > 0 && cores_per_chip > 0);
        let ncores = chips * cores_per_chip;
        MemorySystem {
            l1: (0..ncores).map(|_| Cache::new(l1)).collect(),
            l1i: (0..ncores).map(|_| Cache::new(l1i)).collect(),
            l2: (0..ncores).map(|_| Cache::new(l2)).collect(),
            l3: (0..chips).map(|_| Cache::new(l3)).collect(),
            ctrl: (0..chips)
                .map(|_| MemoryController::new(mem, l3.line_bytes))
                .collect(),
            cores_per_chip,
            line_bytes: l1.line_bytes,
        }
    }

    /// Number of chips.
    pub fn chips(&self) -> usize {
        self.ctrl.len()
    }

    /// Chip that owns `core`.
    #[inline]
    pub fn chip_of(&self, core: usize) -> usize {
        core / self.cores_per_chip
    }

    /// Line size used for probes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Would a load from `core` hit in L1 (no state change)?
    #[inline]
    pub fn probe_l1(&self, core: usize, addr: u64) -> bool {
        self.l1[core].probe(addr)
    }

    /// Instruction fetch for `core` at `pc`: hits in the L1I are free
    /// (covered by the pipeline); misses walk the shared L2/L3/memory path
    /// and return the front-end stall in `latency`.
    pub fn fetch_access(&mut self, core: usize, pc: u64, now: u64) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        if self.l1i[core].access(pc) {
            return out; // latency 0: L1I hits are pipelined away
        }
        out.l1_miss = true;
        if self.l2[core].access(pc) {
            out.latency = self.l2[core].latency;
            return out;
        }
        out.l2_miss = true;
        let chip = self.chip_of(core);
        if self.l3[chip].access(pc) {
            out.latency = self.l3[chip].latency;
            return out;
        }
        out.l3_miss = true;
        let arrive = self.ctrl[chip].service(now, false);
        out.latency = arrive.saturating_sub(now).max(1);
        out
    }

    /// Walk an access through the hierarchy, filling lines on the way, and
    /// return the outcome. `remote` marks data homed on a remote chip
    /// (meaningful only on multi-chip machines).
    pub fn access(&mut self, core: usize, addr: u64, remote: bool, now: u64) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        if self.l1[core].access(addr) {
            out.latency = self.l1[core].latency;
            return out;
        }
        out.l1_miss = true;
        if self.l2[core].access(addr) {
            out.latency = self.l2[core].latency;
            return out;
        }
        out.l2_miss = true;
        let chip = self.chip_of(core);
        if self.l3[chip].access(addr) {
            out.latency = self.l3[chip].latency;
            return out;
        }
        out.l3_miss = true;
        let (target, is_remote) = if remote && self.chips() > 1 {
            ((chip + 1) % self.chips(), true)
        } else {
            (chip, false)
        };
        out.remote = is_remote;
        let arrive = self.ctrl[target].service(now, is_remote);
        out.latency = arrive.saturating_sub(now).max(1);
        out
    }

    /// Memory-channel backlog of a chip, for diagnostics.
    pub fn backlog(&self, chip: usize, now: u64) -> u64 {
        self.ctrl[chip].backlog(now)
    }

    /// Total memory requests served by all controllers.
    pub fn total_mem_requests(&self) -> u64 {
        self.ctrl.iter().map(|c| c.requests).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_l1() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 64,
            latency: 2,
        }
    }

    fn cfgs() -> (CacheConfig, CacheConfig, CacheConfig, MemConfig) {
        (
            small_l1(),
            CacheConfig {
                size_bytes: 4096,
                assoc: 4,
                line_bytes: 64,
                latency: 10,
            },
            CacheConfig {
                size_bytes: 16384,
                assoc: 8,
                line_bytes: 64,
                latency: 30,
            },
            MemConfig {
                latency: 100,
                bytes_per_cycle: 16.0,
                remote_extra_latency: 50,
            },
        )
    }

    #[test]
    fn cache_hit_after_fill() {
        let mut c = Cache::new(small_l1());
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert_eq!(c.accesses, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn cache_same_line_different_offsets_hit() {
        let mut c = Cache::new(small_l1());
        assert!(!c.access(0x80));
        assert!(c.access(0x81));
        assert!(c.access(0xBF));
    }

    #[test]
    fn cache_lru_eviction() {
        // 1024 B / 64 B lines / 2-way = 8 sets. Three lines mapping to the
        // same set: line numbers 0, 8, 16 => addrs 0, 8*64, 16*64.
        let mut c = Cache::new(small_l1());
        c.access(0);
        c.access(8 * 64);
        c.access(16 * 64); // evicts line 0 (LRU)
        assert!(!c.access(0), "LRU line should have been evicted");
        // line 16*64 was MRU before the re-fill of 0; 8*64 got evicted by 0.
        assert!(c.access(16 * 64));
    }

    #[test]
    fn cache_probe_does_not_fill() {
        let mut c = Cache::new(small_l1());
        assert!(!c.probe(0x40));
        assert!(!c.probe(0x40), "probe must not fill");
        c.access(0x40);
        assert!(c.probe(0x40));
    }

    #[test]
    fn num_sets_at_least_one() {
        let cfg = CacheConfig {
            size_bytes: 64,
            assoc: 4,
            line_bytes: 64,
            latency: 1,
        };
        assert_eq!(cfg.num_sets(), 1);
        Cache::new(cfg).access(0);
    }

    #[test]
    fn controller_unloaded_latency() {
        let (_, _, _, mem) = cfgs();
        let mut m = MemoryController::new(mem, 64);
        assert_eq!(m.service(1000, false), 1100);
    }

    #[test]
    fn controller_queues_under_load() {
        let (_, _, _, mem) = cfgs();
        // 64-byte lines at 16 B/cycle = 4 cycles occupancy per request.
        let mut m = MemoryController::new(mem, 64);
        let a = m.service(0, false);
        let b = m.service(0, false);
        let c = m.service(0, false);
        assert_eq!(a, 100);
        assert_eq!(b, 104);
        assert_eq!(c, 108);
        assert_eq!(m.backlog(0), 12);
        // After the backlog drains, latency is unloaded again.
        assert_eq!(m.service(1000, false), 1100);
    }

    #[test]
    fn controller_remote_penalty() {
        let (_, _, _, mem) = cfgs();
        let mut m = MemoryController::new(mem, 64);
        assert_eq!(m.service(0, true), 150);
    }

    #[test]
    fn hierarchy_walk_latencies() {
        let (l1, l2, l3, mem) = cfgs();
        let mut ms = MemorySystem::new(1, 2, l1, l2, l3, mem);
        // Cold: full walk to memory.
        let out = ms.access(0, 0x1000, false, 0);
        assert!(out.l1_miss && out.l2_miss && out.l3_miss);
        assert_eq!(out.latency, 100);
        // Warm: L1 hit.
        let out = ms.access(0, 0x1000, false, 10);
        assert!(!out.l1_miss);
        assert_eq!(out.latency, 2);
    }

    #[test]
    fn hierarchy_l3_shared_between_cores_on_chip() {
        let (l1, l2, l3, mem) = cfgs();
        let mut ms = MemorySystem::new(1, 2, l1, l2, l3, mem);
        ms.access(0, 0x2000, false, 0); // core 0 fills L3
        let out = ms.access(1, 0x2000, false, 10); // core 1 misses L1/L2, hits L3
        assert!(out.l1_miss && out.l2_miss && !out.l3_miss);
        assert_eq!(out.latency, 30);
    }

    #[test]
    fn hierarchy_l1_private_between_cores() {
        let (l1, l2, l3, mem) = cfgs();
        let mut ms = MemorySystem::new(1, 2, l1, l2, l3, mem);
        ms.access(0, 0x3000, false, 0);
        assert!(ms.probe_l1(0, 0x3000));
        assert!(!ms.probe_l1(1, 0x3000));
    }

    #[test]
    fn remote_access_uses_other_chip_and_pays_extra() {
        let (l1, l2, l3, mem) = cfgs();
        let mut ms = MemorySystem::new(2, 1, l1, l2, l3, mem);
        let out = ms.access(0, 0x4000, true, 0);
        assert!(out.remote);
        assert_eq!(out.latency, 150);
        // Local access on chip 0 still sees an idle local controller.
        let out2 = ms.access(0, 0x9000, false, 0);
        assert!(!out2.remote);
        assert_eq!(out2.latency, 100);
    }

    #[test]
    fn remote_flag_ignored_on_single_chip() {
        let (l1, l2, l3, mem) = cfgs();
        let mut ms = MemorySystem::new(1, 1, l1, l2, l3, mem);
        let out = ms.access(0, 0x4000, true, 0);
        assert!(!out.remote);
        assert_eq!(out.latency, 100);
    }

    #[test]
    fn chip_of_maps_cores() {
        let (l1, l2, l3, mem) = cfgs();
        let ms = MemorySystem::new(2, 4, l1, l2, l3, mem);
        assert_eq!(ms.chip_of(0), 0);
        assert_eq!(ms.chip_of(3), 0);
        assert_eq!(ms.chip_of(4), 1);
        assert_eq!(ms.chip_of(7), 1);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = Cache::new(small_l1());
        c.access(0x40);
        c.flush();
        assert!(!c.probe(0x40));
    }
}
