//! Instruction representation.
//!
//! Workload generators feed the simulator a per-software-thread stream of
//! decoded [`Instr`] records. The representation is deliberately minimal:
//! the SMT-selection metric depends on *which issue port* an instruction
//! needs, *whether it stalls* (memory, branches, dependencies) and *whether
//! it represents useful work* (spin-loop instructions do not) — not on
//! semantics, so there are no registers or opcodes here, only the fields
//! that drive pipeline behaviour.

use serde::{Deserialize, Serialize};

/// Architectural instruction classes, covering both modeled architectures.
///
/// The POWER7-like descriptor routes each class to a dedicated port kind
/// (Fig. 4 of the paper); the Nehalem-like descriptor maps several classes
/// onto shared ports (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstrClass {
    /// Memory read. Latency comes from the cache hierarchy.
    Load,
    /// Memory write (write-allocate; completes quickly, consumes bandwidth).
    Store,
    /// Branch; may be flagged as mispredicted, which stalls fetch.
    Branch,
    /// Condition-register logic (POWER-specific; folded into the branch unit
    /// for the ideal-mix computation, per Section II-A).
    CondReg,
    /// Fixed-point / integer ALU.
    FixedPoint,
    /// Vector-scalar / floating-point (the paper's VSU bucket).
    VectorScalar,
}

/// Number of distinct instruction classes.
pub const NUM_CLASSES: usize = 6;

impl InstrClass {
    /// All classes, in `index` order.
    pub const ALL: [InstrClass; NUM_CLASSES] = [
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Branch,
        InstrClass::CondReg,
        InstrClass::FixedPoint,
        InstrClass::VectorScalar,
    ];

    /// Dense index for counter arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            InstrClass::Load => 0,
            InstrClass::Store => 1,
            InstrClass::Branch => 2,
            InstrClass::CondReg => 3,
            InstrClass::FixedPoint => 4,
            InstrClass::VectorScalar => 5,
        }
    }

    /// Inverse of [`InstrClass::index`]; panics on out-of-range input.
    pub fn from_index(i: usize) -> InstrClass {
        Self::ALL[i]
    }

    /// Whether the class references memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, InstrClass::Load | InstrClass::Store)
    }
}

/// Maximum register-dependency distance the pipeline tracks. A dependency
/// on an instruction more than `DEP_WINDOW - 1` slots earlier is treated as
/// already satisfied (it will long since have completed).
pub const DEP_WINDOW: usize = 64;

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instr {
    /// Which functional-unit class this instruction needs.
    pub class: InstrClass,
    /// Register dependency: this instruction reads the result of the
    /// instruction `dep_dist` earlier in the same thread's program order.
    /// `0` means no dependency. Values are clamped to `DEP_WINDOW - 1`.
    pub dep_dist: u8,
    /// Effective address for `Load`/`Store`; ignored otherwise.
    pub addr: u64,
    /// For multi-chip systems: the access targets memory homed on a remote
    /// chip (shared data). Ignored on single-chip systems.
    pub remote: bool,
    /// For `Branch`: the branch predictor got this one wrong, costing a
    /// fetch bubble of the architecture's mispredict penalty. Used when
    /// the machine has no predictor model configured (the calibrated
    /// default); ignored otherwise.
    pub mispredict: bool,
    /// For `Branch`: the actual outcome, consumed by the optional gshare
    /// predictor model.
    pub taken: bool,
    /// Useful-work units this instruction contributes. Spin-loop and other
    /// overhead instructions carry `0`; ordinary instructions carry `1`.
    pub work: u8,
    /// Program counter of this instruction (instruction-cache address).
    /// `0` keeps the whole stream on one line (no front-end misses) — the
    /// right default for kernels whose code fits the L1I.
    pub pc: u64,
}

impl Instr {
    /// A plain, dependency-free ALU-style instruction of `class` carrying
    /// one unit of work.
    pub fn simple(class: InstrClass) -> Instr {
        Instr {
            class,
            dep_dist: 0,
            addr: 0,
            remote: false,
            mispredict: false,
            taken: true,
            work: 1,
            pc: 0,
        }
    }

    /// A load from `addr` with one unit of work.
    pub fn load(addr: u64) -> Instr {
        Instr {
            addr,
            ..Instr::simple(InstrClass::Load)
        }
    }

    /// A store to `addr` with one unit of work.
    pub fn store(addr: u64) -> Instr {
        Instr {
            addr,
            ..Instr::simple(InstrClass::Store)
        }
    }

    /// A branch; `mispredict` marks a predictor miss.
    pub fn branch(mispredict: bool) -> Instr {
        Instr {
            mispredict,
            ..Instr::simple(InstrClass::Branch)
        }
    }

    /// Set the branch outcome (builder style; used by the predictor model).
    pub fn with_outcome(mut self, taken: bool) -> Instr {
        self.taken = taken;
        self
    }

    /// Set the register-dependency distance (builder style).
    pub fn with_dep(mut self, dep_dist: u8) -> Instr {
        self.dep_dist = dep_dist.min((DEP_WINDOW - 1) as u8);
        self
    }

    /// Mark as overhead (no useful work), e.g. a spin-loop body instruction.
    pub fn overhead(mut self) -> Instr {
        self.work = 0;
        self
    }

    /// Set the program counter (builder style).
    pub fn at_pc(mut self, pc: u64) -> Instr {
        self.pc = pc;
        self
    }
}

/// A flat, struct-of-arrays batch of decoded instructions.
///
/// Workload generators decode in batches and serve the fetch stage out of
/// one of these instead of materializing an `Instr` per call site: six
/// parallel dense arrays (one per field family) keep a whole batch in a
/// handful of cache lines, where a `Vec<Instr>` would spread the same data
/// over padded 40-byte records. Consumption is FIFO via a head cursor, so
/// draining a block never shifts memory.
#[derive(Debug, Clone, Default)]
pub struct InstrBlock {
    class: Vec<u8>,
    dep_dist: Vec<u8>,
    /// Packed booleans: bit 0 = `remote`, bit 1 = `mispredict`, bit 2 = `taken`.
    flags: Vec<u8>,
    work: Vec<u8>,
    addr: Vec<u64>,
    pc: Vec<u64>,
    head: usize,
}

impl InstrBlock {
    /// An empty block with room for `n` instructions per field array.
    pub fn with_capacity(n: usize) -> InstrBlock {
        InstrBlock {
            class: Vec::with_capacity(n),
            dep_dist: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            work: Vec::with_capacity(n),
            addr: Vec::with_capacity(n),
            pc: Vec::with_capacity(n),
            head: 0,
        }
    }

    /// Append one decoded instruction to the tail of the block.
    pub fn push(&mut self, i: Instr) {
        self.class.push(i.class.index() as u8);
        self.dep_dist.push(i.dep_dist);
        self.flags
            .push(u8::from(i.remote) | u8::from(i.mispredict) << 1 | u8::from(i.taken) << 2);
        self.work.push(i.work);
        self.addr.push(i.addr);
        self.pc.push(i.pc);
    }

    /// Remove and return the oldest instruction, or `None` when drained.
    #[inline]
    pub fn pop(&mut self) -> Option<Instr> {
        let h = self.head;
        if h >= self.class.len() {
            return None;
        }
        self.head = h + 1;
        Some(self.get(h))
    }

    /// Reassemble the instruction at absolute index `i` (independent of
    /// the FIFO cursor). Panics when out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Instr {
        let flags = self.flags[i];
        Instr {
            class: InstrClass::from_index(self.class[i] as usize),
            dep_dist: self.dep_dist[i],
            addr: self.addr[i],
            remote: flags & 1 != 0,
            mispredict: flags & 2 != 0,
            taken: flags & 4 != 0,
            work: self.work[i],
            pc: self.pc[i],
        }
    }

    /// Total instructions pushed (served or not — the absolute index
    /// range valid for [`InstrBlock::get`]).
    #[inline]
    pub fn total(&self) -> usize {
        self.class.len()
    }

    /// Instructions still unserved.
    #[inline]
    pub fn len(&self) -> usize {
        self.class.len() - self.head
    }

    /// Whether every pushed instruction has been served.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head >= self.class.len()
    }

    /// Drop all contents (served and unserved) but keep the allocations,
    /// readying the block for the next decode batch.
    pub fn clear(&mut self) {
        self.class.clear();
        self.dep_dist.clear();
        self.flags.clear();
        self.work.clear();
        self.addr.clear();
        self.pc.clear();
        self.head = 0;
    }
}

/// What a software thread hands the fetch stage when asked for its next
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetched {
    /// The next instruction in program order.
    Instr(Instr),
    /// The thread blocks (sleep, blocking lock, barrier, I/O) and will not
    /// run again before the given cycle. The workload will be polled again
    /// at wake-up, so waiting on a condition is expressed as repeated short
    /// sleeps.
    Sleep {
        /// Absolute cycle at which the thread becomes runnable again.
        until: u64,
    },
    /// The thread has no more work, ever.
    Finished,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_roundtrip() {
        for (i, &c) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(InstrClass::from_index(i), c);
        }
    }

    #[test]
    fn is_mem_only_for_loads_and_stores() {
        assert!(InstrClass::Load.is_mem());
        assert!(InstrClass::Store.is_mem());
        assert!(!InstrClass::Branch.is_mem());
        assert!(!InstrClass::FixedPoint.is_mem());
        assert!(!InstrClass::VectorScalar.is_mem());
        assert!(!InstrClass::CondReg.is_mem());
    }

    #[test]
    fn builders_set_fields() {
        let l = Instr::load(0x40);
        assert_eq!(l.class, InstrClass::Load);
        assert_eq!(l.addr, 0x40);
        assert_eq!(l.work, 1);

        let b = Instr::branch(true);
        assert!(b.mispredict);

        let d = Instr::simple(InstrClass::FixedPoint).with_dep(3);
        assert_eq!(d.dep_dist, 3);

        let o = Instr::simple(InstrClass::Branch).overhead();
        assert_eq!(o.work, 0);

        let p = Instr::simple(InstrClass::Load).at_pc(0x4000);
        assert_eq!(p.pc, 0x4000);
    }

    #[test]
    fn dep_dist_clamped_to_window() {
        let d = Instr::simple(InstrClass::FixedPoint).with_dep(255);
        assert_eq!(d.dep_dist as usize, DEP_WINDOW - 1);
    }
}
