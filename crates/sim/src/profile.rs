//! Self-profiling support: cycle-attributed per-phase timing of the
//! simulator's own hot path.
//!
//! `repro perf --flamegraph` runs the standard perf matrix through
//! [`Simulation::run_cycles_profiled`](crate::machine::Simulation::run_cycles_profiled),
//! which timestamps every pipeline phase of every core-step with [`ticks`]
//! (the TSC on x86-64, a monotonic-clock fallback elsewhere) and
//! accumulates the deltas here. The result answers "where did the wall
//! time go?" — issue scan vs cache walks vs dispatch vs fetch vs
//! bookkeeping — without external tooling, so perf PRs can see their
//! target before and their effect after.
//!
//! Overhead note: a phase boundary is one `rdtsc` (~10 ns), five per
//! simulated core-cycle, so profiled runs are slower than plain runs and
//! their absolute cycles/sec is *not* comparable to `BENCH_sim.json`
//! numbers. The per-phase *shares* are what the mode is for.

/// Per-phase tick totals over a profiled run. All tick fields are in
/// [`ticks`] units; convert with [`ticks_per_sec`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseProfile {
    /// Wake/retire: LMQ sweep, unparking, thread state transitions, and
    /// dynamic-partition cap refresh.
    pub retire: u64,
    /// Issue scan proper (ready classification, port selection, commit),
    /// *excluding* the cache-hierarchy walks below.
    pub issue: u64,
    /// Cache-hierarchy walks issued from the issue stage (L1 probes and
    /// `MemorySystem::access` for loads/stores).
    pub mem: u64,
    /// Dispatch: queue routing, ROB window checks, DispHeld accounting.
    pub dispatch: u64,
    /// Fetch: workload instruction generation plus I-cache probes.
    pub fetch: u64,
    /// End-of-cycle accounting (and, in debug builds, invariant checks).
    pub bookkeeping: u64,
    /// Core-steps timed (one per core per non-skipped cycle).
    pub steps: u64,
    /// Simulated cycles covered by the profiled run, including cycles
    /// elided by fast-forward (which cost no phase time).
    pub cycles: u64,
}

impl PhaseProfile {
    /// Sum of all phase buckets.
    pub fn total_ticks(&self) -> u64 {
        self.retire + self.issue + self.mem + self.dispatch + self.fetch + self.bookkeeping
    }

    /// Accumulate another profile (e.g. across matrix cases).
    pub fn merge(&mut self, other: &PhaseProfile) {
        self.retire += other.retire;
        self.issue += other.issue;
        self.mem += other.mem;
        self.dispatch += other.dispatch;
        self.fetch += other.fetch;
        self.bookkeeping += other.bookkeeping;
        self.steps += other.steps;
        self.cycles += other.cycles;
    }

    /// `(label, ticks)` rows in pipeline order, for table/folded output.
    pub fn phases(&self) -> [(&'static str, u64); 6] {
        [
            ("retire", self.retire),
            ("issue_scan", self.issue),
            ("cache", self.mem),
            ("dispatch", self.dispatch),
            ("fetch", self.fetch),
            ("bookkeeping", self.bookkeeping),
        ]
    }
}

/// A raw timestamp in arbitrary-but-monotonic units: the TSC on x86-64,
/// nanoseconds from a process-local epoch elsewhere.
#[inline]
pub fn ticks() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // Safety: RDTSC is unprivileged and has no memory operands.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = *EPOCH.get_or_init(Instant::now);
        epoch.elapsed().as_nanos() as u64
    }
}

/// Measure how many [`ticks`] elapse per wall second (~10 ms calibration
/// spin against the monotonic clock; invariant-TSC hosts make this
/// stable).
pub fn ticks_per_sec() -> f64 {
    use std::time::{Duration, Instant};
    let t0 = ticks();
    let w0 = Instant::now();
    while w0.elapsed() < Duration::from_millis(10) {
        std::hint::spin_loop();
    }
    let dt = ticks() - t0;
    dt as f64 / w0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic() {
        let a = ticks();
        let b = ticks();
        assert!(b >= a);
    }

    #[test]
    fn calibration_is_positive_and_sane() {
        let tps = ticks_per_sec();
        // Anything from a 1 MHz fallback clock to a 10 GHz TSC.
        assert!(tps > 1e5 && tps < 2e10, "ticks/sec = {tps}");
    }

    #[test]
    fn profile_merges_and_totals() {
        let mut a = PhaseProfile {
            retire: 1,
            issue: 2,
            mem: 3,
            dispatch: 4,
            fetch: 5,
            bookkeeping: 6,
            steps: 7,
            cycles: 8,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total_ticks(), 2 * (1 + 2 + 3 + 4 + 5 + 6));
        assert_eq!(a.steps, 14);
        assert_eq!(a.cycles, 16);
        assert_eq!(a.phases()[1], ("issue_scan", 4));
    }
}
