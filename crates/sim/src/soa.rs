//! Struct-of-arrays issue-queue storage and word-parallel ready scanning.
//!
//! The legacy issue engine walks a `VecDeque<QEntry>` one entry at a time:
//! every waiting instruction costs a pointer chase, a handful of branchy
//! field reads, and a scan-depth bookkeeping update, every cycle, even
//! though the common outcome is "still waiting". This module stores the
//! same queue as parallel arrays indexed by *age order* plus two `u64`
//! bitmap banks:
//!
//! - `occ` — bit set when the slot holds a live (non-tombstoned) entry;
//! - `unknown` — bit set when the slot's memoized `ready_at` is still the
//!   `0` = unknown sentinel (producer not yet issued, or never inspected).
//!
//! With that layout one 64-slot word of the queue is classified in a few
//! mask operations: `known = occ & !unknown` entries carry an immutable
//! producer-completion timestamp, so "which of these are still waiting?"
//! is a vectorizable `ready_at[i] > now` compare across the word
//! ([`wait_mask`]), and the slots that need the slow path — issue, park,
//! memoize, or a dependence-ring lookup — are exactly
//! `(known & !wait) | unknown`, iterated with `trailing_zeros`. Everything
//! else (the typical majority) is skipped wholesale.
//!
//! Because slot index equals age order and the slow path is shared with
//! the legacy engine, the scan inspects candidates in the *same order* and
//! applies the *same transitions* as the legacy walk — the property the
//! differential suite (`crates/experiments/tests/differential.rs`) checks
//! bit-for-bit.
//!
//! The word kernel has two implementations selected by [`ScanKernel`]:
//! a portable sparse `u64` bit-iterator, and an AVX2 variant
//! (`core::arch` intrinsics behind `is_x86_feature_detected!`, the same
//! no-new-deps discipline as the raw-syscall layers in `smt-collect` and
//! `smt-service`) that compares four timestamps per instruction and is
//! preferred for dense words. x86-64's baseline SSE2 still applies to the
//! scalar path through autovectorization; the explicit intrinsics exist
//! because 64-bit compares only pay off at AVX2 widths.

use crate::isa::{Instr, InstrClass};

/// Which issue-queue engine a core runs.
///
/// Both engines are bit-identical by construction and by differential
/// proof; `Legacy` is kept as the executable reference the proofs compare
/// against (and as a fallback should a future port find a miscompile in
/// the mask kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IssueEngine {
    /// The original `VecDeque<QEntry>` per-entry scan.
    Legacy,
    /// Struct-of-arrays bitmaps with word-parallel ready masks.
    #[default]
    Soa,
}

/// Which word kernel the SoA engine uses for the ready-timestamp compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanKernel {
    /// Pick the widest kernel the host supports (AVX2 when detected,
    /// scalar otherwise), per word: sparse words use the scalar path even
    /// when SIMD is available because iterating three set bits beats
    /// comparing sixty-four lanes.
    #[default]
    Auto,
    /// Portable `u64` bit-iteration only.
    ScalarU64,
    /// Force the SIMD compare for every non-empty word. Panics at core
    /// construction if the host lacks AVX2 — gate on
    /// [`simd_available`] first.
    Simd,
}

impl ScanKernel {
    /// Parse a CLI/env spelling (`auto`, `scalar`, `simd`).
    pub fn parse(s: &str) -> Option<ScanKernel> {
        match s {
            "auto" => Some(ScanKernel::Auto),
            "scalar" | "scalar-u64" => Some(ScanKernel::ScalarU64),
            "simd" => Some(ScanKernel::Simd),
            _ => None,
        }
    }

    /// Canonical name as recorded in `BENCH_sim.json` runs.
    pub fn name(self) -> &'static str {
        match self {
            ScanKernel::Auto => "auto",
            ScanKernel::ScalarU64 => "scalar-u64",
            ScanKernel::Simd => "simd",
        }
    }
}

/// Whether the SIMD word kernel can run on this host.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolved kernel choice for one core: `true` = SIMD allowed.
pub(crate) fn resolve_kernel(kernel: ScanKernel) -> bool {
    match kernel {
        ScanKernel::Auto => simd_available(),
        ScanKernel::ScalarU64 => false,
        ScanKernel::Simd => {
            assert!(
                simd_available(),
                "ScanKernel::Simd requested but the host lacks AVX2; \
                 check smt_sim::simd_available() first"
            );
            true
        }
    }
}

/// Below this many known timestamps in a word, the sparse scalar kernel
/// is used even when SIMD is available. In isolation the AVX2 kernel
/// already wins at ~10 set bits (16 quad-compares beat 10+
/// bit-iterations), but issuing 256-bit ops on partially-loaded words
/// measurably drags the *surrounding* scalar pipeline on the cloud hosts
/// we benchmark on (AVX frequency licensing): end-to-end, a gate of 16
/// lost ~8% matrix geomean to forced-scalar, while 32 — AVX2 only for
/// words where it wins decisively — measures at parity or better.
const SIMD_DENSITY: u32 = 32;

/// Dead (tombstoned) slots the *legacy* engine tolerates before its
/// `VecDeque` is compacted. The SoA engine instead compacts only when a
/// push would otherwise grow the arrays: tombstones are invisible to its
/// bitmap walk (a cleared `occ` bit costs nothing to skip), and deferring
/// compaction keeps queue generations — and with them the registered
/// producer-wakeup slots — stable for longer. Compaction timing is purely
/// a layout choice, invisible to architectural state, so the engines need
/// not agree on it.
pub(crate) const COMPACT_DEAD: usize = 8;

/// Waiting-entry mask for one word: bit `b` set when `known` holds `b`
/// and `ready_at[b] > now`. `ready_at` must cover the full 64 lanes
/// (slots are padded to whole words); lanes outside `known` may hold
/// stale values and are masked out.
#[inline]
pub(crate) fn wait_mask(use_simd: bool, known: u64, ready_at: &[u64], now: u64) -> u64 {
    debug_assert!(ready_at.len() >= 64);
    #[cfg(target_arch = "x86_64")]
    if use_simd && known.count_ones() >= SIMD_DENSITY {
        // Safety: `resolve_kernel` only hands out `use_simd` on hosts
        // where AVX2 was detected.
        return unsafe { wait_mask_avx2(known, ready_at, now) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_simd;
    wait_mask_scalar(known, ready_at, now)
}

/// Sparse portable kernel: iterate the set bits of `known`.
#[inline]
fn wait_mask_scalar(known: u64, ready_at: &[u64], now: u64) -> u64 {
    let mut wait = 0u64;
    let mut bits = known;
    while bits != 0 {
        let b = bits.trailing_zeros() as u64;
        bits &= bits - 1;
        wait |= u64::from(ready_at[b as usize] > now) << b;
    }
    wait
}

/// AVX2 kernel: sixteen 4-lane signed 64-bit compares cover the word.
/// Timestamps are cycle counts (far below `2^63`), so the signed compare
/// is exact; `u64::MAX` never appears in `ready_at`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn wait_mask_avx2(known: u64, ready_at: &[u64], now: u64) -> u64 {
    use core::arch::x86_64::{
        __m256i, _mm256_castsi256_pd, _mm256_cmpgt_epi64, _mm256_loadu_si256, _mm256_movemask_pd,
        _mm256_set1_epi64x,
    };
    let nowv = _mm256_set1_epi64x(now as i64);
    let base = ready_at.as_ptr();
    let mut wait = 0u64;
    for quad in 0..16 {
        let ra = _mm256_loadu_si256(base.add(quad * 4) as *const __m256i);
        let gt = _mm256_cmpgt_epi64(ra, nowv);
        let m = _mm256_movemask_pd(_mm256_castsi256_pd(gt)) as u64;
        wait |= m << (quad * 4);
    }
    wait & known
}

/// Keep only the lowest `n` set bits of `word` (the scan-depth trim: the
/// issue stage may inspect at most `issue_scan_depth` live entries, oldest
/// first). Rare path — it only runs when a queue transiently holds more
/// live entries than the scan depth (unpark overflow).
pub(crate) fn keep_lowest_set(word: u64, n: usize) -> u64 {
    let mut kept = 0u64;
    let mut bits = word;
    for _ in 0..n {
        if bits == 0 {
            break;
        }
        let low = bits & bits.wrapping_neg();
        kept |= low;
        bits ^= low;
    }
    kept
}

/// An issue queue stored as parallel arrays plus occupancy bitmaps.
///
/// Slot index is age order (older = lower), exactly like the legacy
/// `VecDeque` after its front-drain; `occ` makes tombstones free to skip
/// and `unknown` separates the immutable-timestamp majority from the
/// slots that still need dependence-ring lookups. Arrays are padded to
/// whole 64-slot words so the SIMD kernel can load full lanes; `plen`
/// tracks the used prefix.
#[derive(Debug, Clone)]
pub(crate) struct SoaQueue {
    /// Physical slots in use (live + tombstoned).
    plen: usize,
    /// Live-slot bitmap, one bit per physical slot.
    pub(crate) occ: Vec<u64>,
    /// Slots whose `ready_at` is the `0` = unknown sentinel.
    pub(crate) unknown: Vec<u64>,
    /// Memoized earliest-ready cycle per slot (`0` = unknown).
    pub(crate) ready_at: Vec<u64>,
    /// Dispatch sequence number per slot.
    pub(crate) seq: Vec<u64>,
    /// Owning hardware context per slot.
    pub(crate) hw: Vec<u8>,
    /// Instruction payload per slot.
    pub(crate) instr: Vec<Instr>,
    /// Slots asleep on a producer wakeup: the slow path proved the
    /// producer has not issued yet (its completion-ring slot still reads
    /// `PENDING`) and registered the slot in the owning context's waiter
    /// table, so the scan can skip it wholesale until the producer's issue
    /// event clears the bit. Always a subset of `occ & unknown`. A
    /// blocked slot is semantically identical to re-inspecting the entry
    /// every cycle — the legacy walk's inspection of such an entry has no
    /// effect beyond vetoing queue quiescence, which [`Self::blocked_any`]
    /// preserves.
    pub(crate) blocked: Vec<u64>,
    /// Bumped whenever existing slots move (`push_front`, [`Self::compact`]),
    /// invalidating every waiter registration that names them; the matching
    /// `blocked` bits are cleared in the same breath so the affected
    /// entries simply fall back to per-cycle rescans until re-registered.
    pub(crate) gen: u16,
    /// Live entries (`occ` popcount).
    live: usize,
    pub(crate) capacity: usize,
    pub(crate) per_thread: [u16; crate::core::MAX_WAYS],
    pub(crate) per_thread_cap: usize,
    /// Same semantics as the legacy `IssueQueue::quiet_until`.
    pub(crate) quiet_until: u64,
}

impl SoaQueue {
    pub(crate) fn new(capacity: usize, per_thread_cap: usize) -> SoaQueue {
        let words = capacity.div_ceil(64).max(1);
        SoaQueue {
            plen: 0,
            occ: vec![0; words],
            unknown: vec![0; words],
            blocked: vec![0; words],
            gen: 0,
            ready_at: vec![0; words * 64],
            seq: vec![0; words * 64],
            hw: vec![0; words * 64],
            instr: vec![Instr::simple(InstrClass::FixedPoint); words * 64],
            live: 0,
            capacity,
            per_thread: [0; crate::core::MAX_WAYS],
            per_thread_cap,
            quiet_until: 0,
        }
    }

    #[inline]
    pub(crate) fn live_len(&self) -> usize {
        self.live
    }

    #[inline]
    pub(crate) fn dead(&self) -> usize {
        self.plen - self.live
    }

    #[inline]
    pub(crate) fn full(&self) -> bool {
        self.live >= self.capacity
    }

    #[inline]
    pub(crate) fn thread_share_full(&self, hw: usize) -> bool {
        usize::from(self.per_thread[hw]) >= self.per_thread_cap
    }

    /// Make room for one more physical slot: compact the tombstones away
    /// when there are any (bumping the generation), otherwise grow every
    /// array by one 64-slot word.
    fn make_room(&mut self) {
        if self.dead() > 0 {
            self.compact();
        } else {
            self.grow();
        }
    }

    /// Grow every array by one 64-slot word.
    fn grow(&mut self) {
        self.occ.push(0);
        self.unknown.push(0);
        self.blocked.push(0);
        self.ready_at.resize(self.ready_at.len() + 64, 0);
        self.seq.resize(self.seq.len() + 64, 0);
        self.hw.resize(self.hw.len() + 64, 0);
        self.instr
            .resize(self.instr.len() + 64, Instr::simple(InstrClass::FixedPoint));
    }

    /// Append a dispatched entry (the youngest slot).
    pub(crate) fn push_back(&mut self, hw: u8, seq: u64, ready_at: u64, instr: Instr) {
        if self.plen == self.occ.len() * 64 {
            self.make_room();
        }
        let slot = self.plen;
        self.ready_at[slot] = ready_at;
        self.seq[slot] = seq;
        self.hw[slot] = hw;
        self.instr[slot] = instr;
        self.occ[slot >> 6] |= 1 << (slot & 63);
        if ready_at == 0 {
            self.unknown[slot >> 6] |= 1 << (slot & 63);
        }
        self.plen += 1;
        self.live += 1;
        self.per_thread[hw as usize] += 1;
        self.quiet_until = 0;
    }

    /// Re-insert an unparked entry at the front (it is older than anything
    /// dispatched since it left). Rare: only producers that missed past the
    /// park threshold route through here, so the array shift is off the
    /// hot path.
    pub(crate) fn push_front(&mut self, hw: u8, seq: u64, ready_at: u64, instr: Instr) {
        if self.plen == self.occ.len() * 64 {
            self.make_room();
        }
        // Every existing slot moves one up: registered wakeups now name the
        // wrong slots, so invalidate them and let the entries rescan.
        self.gen = self.gen.wrapping_add(1);
        self.blocked.fill(0);
        self.ready_at.copy_within(0..self.plen, 1);
        self.seq.copy_within(0..self.plen, 1);
        self.hw.copy_within(0..self.plen, 1);
        self.instr.copy_within(0..self.plen, 1);
        self.ready_at[0] = ready_at;
        self.seq[0] = seq;
        self.hw[0] = hw;
        self.instr[0] = instr;
        let mut carry_occ = 1u64;
        let mut carry_unk = u64::from(ready_at == 0);
        for w in 0..self.occ.len() {
            let o = self.occ[w];
            self.occ[w] = (o << 1) | carry_occ;
            carry_occ = o >> 63;
            let u = self.unknown[w];
            self.unknown[w] = (u << 1) | carry_unk;
            carry_unk = u >> 63;
        }
        self.plen += 1;
        self.live += 1;
        self.per_thread[hw as usize] += 1;
        self.quiet_until = 0;
    }

    /// Logically remove the entry at `slot` (issue or park).
    #[inline]
    pub(crate) fn tombstone(&mut self, slot: usize, hw: usize) {
        let bit = 1u64 << (slot & 63);
        self.occ[slot >> 6] &= !bit;
        self.unknown[slot >> 6] &= !bit;
        self.blocked[slot >> 6] &= !bit;
        self.live -= 1;
        self.per_thread[hw] -= 1;
    }

    /// Put `slot` to sleep until its producer's issue event clears it.
    #[inline]
    pub(crate) fn set_blocked(&mut self, slot: usize) {
        self.blocked[slot >> 6] |= 1 << (slot & 63);
    }

    /// Wake `slot` (producer issued, or a spurious ring-collision wake —
    /// either way the next scan re-inspects it).
    #[inline]
    pub(crate) fn clear_blocked(&mut self, slot: usize) {
        self.blocked[slot >> 6] &= !(1u64 << (slot & 63));
    }

    /// Is `slot` asleep on a producer wakeup?
    #[inline]
    pub(crate) fn is_blocked(&self, slot: usize) -> bool {
        self.blocked[slot >> 6] & (1 << (slot & 63)) != 0
    }

    /// Clear the unknown mark after memoizing `ready_at[slot]`.
    #[inline]
    pub(crate) fn clear_unknown(&mut self, slot: usize) {
        self.unknown[slot >> 6] &= !(1u64 << (slot & 63));
    }

    /// Squeeze tombstones out: live entries slide down to a dense prefix,
    /// preserving age order. Purely a layout change — invisible to the
    /// architectural state. Slots move, so wakeup registrations are
    /// invalidated (generation bump) and blocked entries fall back to
    /// rescanning.
    pub(crate) fn compact(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        self.blocked.fill(0);
        let words = self.occ.len();
        let mut dst = 0usize;
        for w in 0..words {
            let mut bits = self.occ[w];
            while bits != 0 {
                let s = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if s != dst {
                    self.ready_at[dst] = self.ready_at[s];
                    self.seq[dst] = self.seq[s];
                    self.hw[dst] = self.hw[s];
                    self.instr[dst] = self.instr[s];
                    // `dst` strictly trails every slot still to be read, so
                    // rewriting the unknown bit in place is safe.
                    let unk = (self.unknown[s >> 6] >> (s & 63)) & 1;
                    let bit = 1u64 << (dst & 63);
                    if unk != 0 {
                        self.unknown[dst >> 6] |= bit;
                    } else {
                        self.unknown[dst >> 6] &= !bit;
                    }
                }
                dst += 1;
            }
        }
        for w in 0..words {
            let lo = w << 6;
            self.occ[w] = if dst >= lo + 64 {
                u64::MAX
            } else if dst > lo {
                (1u64 << (dst - lo)) - 1
            } else {
                0
            };
            self.unknown[w] &= self.occ[w];
        }
        self.plen = dst;
        debug_assert_eq!(self.live, dst);
    }

    /// Iterate live slots in age order, calling `f(slot)`; returns early
    /// if `f` returns `false`. Diagnostics/invariants only — the issue
    /// scan has its own fused loop.
    pub(crate) fn for_each_live(&self, mut f: impl FnMut(usize) -> bool) {
        for w in 0..self.occ.len() {
            let mut bits = self.occ[w];
            while bits != 0 {
                let s = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if !f(s) {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_mask_scalar_and_dense_agree() {
        let mut ready = vec![0u64; 64];
        for (i, r) in ready.iter_mut().enumerate() {
            *r = (i as u64 * 7919) % 100;
        }
        let known = 0xDEAD_BEEF_F00D_4242u64;
        for now in [0u64, 10, 50, 99, 1000] {
            let scalar = wait_mask(false, known, &ready, now);
            // Reference: per-lane check.
            let mut reference = 0u64;
            for (b, &r) in ready.iter().enumerate() {
                if known & (1 << b) != 0 && r > now {
                    reference |= 1 << b;
                }
            }
            assert_eq!(scalar, reference, "now={now}");
            if simd_available() {
                let simd = wait_mask(true, known, &ready, now);
                assert_eq!(simd, reference, "simd now={now}");
            }
        }
    }

    #[test]
    fn keep_lowest_set_trims_in_age_order() {
        let w = 0b1011_0110u64;
        assert_eq!(keep_lowest_set(w, 0), 0);
        assert_eq!(keep_lowest_set(w, 1), 0b0000_0010);
        assert_eq!(keep_lowest_set(w, 3), 0b0001_0110);
        assert_eq!(keep_lowest_set(w, 99), w);
    }

    #[test]
    fn push_front_shifts_bitmaps_across_words() {
        let mut q = SoaQueue::new(8, 8);
        // Fill past one word so the carry path runs.
        for k in 0..70u64 {
            q.push_back(0, k, 0, Instr::simple(InstrClass::FixedPoint));
        }
        assert_eq!(q.live_len(), 70);
        q.push_front(1, 999, 0, Instr::simple(InstrClass::Load));
        assert_eq!(q.live_len(), 71);
        assert_eq!(q.seq[0], 999);
        assert_eq!(q.hw[0], 1);
        assert_eq!(q.seq[1], 0);
        assert_eq!(q.seq[70], 69);
        // All 71 slots live, bitmaps contiguous.
        assert_eq!(q.occ[0], u64::MAX);
        assert_eq!(q.occ[1], (1u64 << 7) - 1);
    }

    #[test]
    fn compact_preserves_age_order_and_unknown_bits() {
        let mut q = SoaQueue::new(8, 8);
        for k in 0..20u64 {
            let ready = if k % 3 == 0 { 0 } else { k + 100 };
            q.push_back(
                (k % 2) as u8,
                k,
                ready,
                Instr::simple(InstrClass::FixedPoint),
            );
        }
        // Tombstone every fourth entry.
        for s in (0..20).step_by(4) {
            let hw = q.hw[s] as usize;
            q.tombstone(s, hw);
        }
        assert_eq!(q.dead(), 5);
        q.compact();
        assert_eq!(q.dead(), 0);
        assert_eq!(q.live_len(), 15);
        let mut seqs = Vec::new();
        q.for_each_live(|s| {
            seqs.push(q.seq[s]);
            let unk = (q.unknown[s >> 6] >> (s & 63)) & 1;
            assert_eq!(unk == 1, q.ready_at[s] == 0, "slot {s}");
            true
        });
        let expect: Vec<u64> = (0..20).filter(|k| k % 4 != 0).collect();
        assert_eq!(seqs, expect);
    }
}
