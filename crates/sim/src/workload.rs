//! The interface between workloads and the simulator.
//!
//! A [`Workload`] is the software side of the machine: it owns all
//! per-software-thread instruction generators *and* any shared state
//! (work pools, locks, barriers), and answers the fetch stage's question
//! "what does thread `t` execute next at cycle `now`?". Keeping the whole
//! application behind one `&mut` object lets synchronization be modeled
//! without interior mutability: the simulation is single-threaded per run
//! (parallelism in this workspace lives *across* runs, via rayon in the
//! experiment harness).

use crate::isa::Fetched;

/// A multithreaded application driving the simulated machine.
pub trait Workload {
    /// Stable, human-readable name (used in every report).
    fn name(&self) -> &str;

    /// Produce the next fetch item for software thread `thread` at cycle
    /// `now`. Must be deterministic given the fetch history.
    ///
    /// Contract: after returning [`Fetched::Finished`] for a thread, every
    /// subsequent call for that thread must also return `Finished`. A
    /// [`Fetched::Sleep`] with `until <= now` is treated as a one-cycle
    /// sleep by the machine.
    fn fetch(&mut self, thread: usize, now: u64) -> Fetched;

    /// Re-shard the application across `n` software threads. Called before
    /// a run starts and again on every SMT-level reconfiguration; remaining
    /// work must be preserved, and any transient synchronization state
    /// (lock holders, barrier arrivals) must be reset to a consistent
    /// quiescent state.
    fn set_thread_count(&mut self, n: usize);

    /// Current software thread count.
    fn thread_count(&self) -> usize;

    /// All useful work has been emitted (threads may still be draining).
    fn finished(&self) -> bool;

    /// Work units emitted so far.
    fn work_done(&self) -> u64;

    /// Total work units this workload will emit across its lifetime.
    fn total_work(&self) -> u64;
}

impl Workload for Box<dyn Workload> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn fetch(&mut self, thread: usize, now: u64) -> Fetched {
        (**self).fetch(thread, now)
    }
    fn set_thread_count(&mut self, n: usize) {
        (**self).set_thread_count(n)
    }
    fn thread_count(&self) -> usize {
        (**self).thread_count()
    }
    fn finished(&self) -> bool {
        (**self).finished()
    }
    fn work_done(&self) -> u64 {
        (**self).work_done()
    }
    fn total_work(&self) -> u64 {
        (**self).total_work()
    }
}

/// A trivial workload executing a fixed per-thread sequence of instructions;
/// used by simulator unit tests and the quickstart example.
#[derive(Debug, Clone)]
pub struct ScriptedWorkload {
    name: String,
    /// The instruction sequence each thread executes.
    script: Vec<crate::isa::Instr>,
    /// Per-thread position in the script.
    pos: Vec<usize>,
    threads: usize,
    emitted: u64,
}

impl ScriptedWorkload {
    /// Every thread runs `script` once, from the top.
    pub fn new(name: impl Into<String>, script: Vec<crate::isa::Instr>) -> ScriptedWorkload {
        ScriptedWorkload {
            name: name.into(),
            script,
            pos: Vec::new(),
            threads: 0,
            emitted: 0,
        }
    }
}

impl Workload for ScriptedWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn fetch(&mut self, thread: usize, _now: u64) -> Fetched {
        let p = &mut self.pos[thread];
        if *p >= self.script.len() {
            return Fetched::Finished;
        }
        let i = self.script[*p];
        *p += 1;
        self.emitted += u64::from(i.work);
        Fetched::Instr(i)
    }

    fn set_thread_count(&mut self, n: usize) {
        self.threads = n;
        self.pos = vec![0; n];
        // Scripted runs restart per thread on reconfiguration; they are a
        // test fixture, not a work-conserving application.
        self.emitted = 0;
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn finished(&self) -> bool {
        self.pos.iter().all(|&p| p >= self.script.len())
    }

    fn work_done(&self) -> u64 {
        self.emitted
    }

    fn total_work(&self) -> u64 {
        (self.script.iter().map(|i| u64::from(i.work)).sum::<u64>()) * self.threads as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, InstrClass};

    #[test]
    fn scripted_workload_runs_each_thread_through_script() {
        let mut w = ScriptedWorkload::new(
            "s",
            vec![
                Instr::simple(InstrClass::FixedPoint),
                Instr::simple(InstrClass::Load),
            ],
        );
        w.set_thread_count(2);
        assert_eq!(w.total_work(), 4);
        assert!(!w.finished());
        assert!(matches!(w.fetch(0, 0), Fetched::Instr(_)));
        assert!(matches!(w.fetch(0, 1), Fetched::Instr(_)));
        assert!(matches!(w.fetch(0, 2), Fetched::Finished));
        assert!(!w.finished());
        w.fetch(1, 3);
        w.fetch(1, 4);
        assert!(matches!(w.fetch(1, 5), Fetched::Finished));
        assert!(w.finished());
        assert_eq!(w.work_done(), 4);
    }

    #[test]
    fn boxed_workload_delegates() {
        let mut w: Box<dyn Workload> = Box::new(ScriptedWorkload::new(
            "boxed",
            vec![Instr::simple(InstrClass::Branch)],
        ));
        w.set_thread_count(1);
        assert_eq!(w.name(), "boxed");
        assert_eq!(w.thread_count(), 1);
        assert!(matches!(w.fetch(0, 0), Fetched::Instr(_)));
        assert!(w.finished());
    }
}
