//! The out-of-order SMT core model.
//!
//! Each simulated cycle a core runs four stages, mirroring the generic
//! execution engine of the paper's Fig. 3:
//!
//! 1. **wake/retire** — sleeping hardware threads whose wake cycle arrived
//!    become runnable; expired load-miss-queue entries free their slots.
//! 2. **issue** — each issue queue is scanned oldest-first (bounded by the
//!    architecture's scan depth); ready instructions (register dependency
//!    resolved, port free, LMQ slot available for missing loads) issue, one
//!    per port per cycle. Loads walk the cache hierarchy here.
//! 3. **dispatch** — up to `dispatch_width` instructions move from the
//!    per-thread fetch buffers into the issue queues, round-robin across
//!    threads, in program order per thread. A thread is blocked when its
//!    target queues are full, when its per-thread queue share is exhausted
//!    (SMT partitioning), or when its in-flight window (ROB analogue) is
//!    full. The *core-level dispatch-held* counter — the metric's DispHeld
//!    input — increments only on cycles where work was available, nothing
//!    dispatched, and a *shared* queue was at capacity.
//! 4. **fetch** — one thread per cycle (round-robin) fetches up to
//!    `fetch_width` instructions from the workload, unless it is blocked by
//!    a mispredicted-branch bubble or its buffer partition is full.
//!
//! Register dependencies use a per-thread completion ring indexed by
//! dispatch sequence number. The ring holds `RING` entries while the
//! in-flight window is capped at `RING - 64` and dependency distances at
//! `DEP_WINDOW - 1 = 63`, which together guarantee a slot is never
//! overwritten while a potential consumer could still read it.
//!
//! The issue stage has two interchangeable engines (see [`IssueEngine`]):
//! the original per-entry `VecDeque` walk, and the default struct-of-arrays
//! bitset engine from [`crate::soa`], whose ready scan is word-parallel
//! mask arithmetic. Both share the same slow path ([`Core::try_issue`]) and
//! inspect candidates in the same age order, so they are bit-identical —
//! the property the differential suite proves per configuration.

use crate::arch::{ArchDescriptor, Partitioning};
use crate::branch::BranchPredictor;
use crate::cache::MemorySystem;
use crate::counters::{CoreCounters, ThreadCounters};
use crate::isa::{Fetched, Instr, InstrClass, NUM_CLASSES};
use crate::profile::{self, PhaseProfile};
use crate::soa::{self, IssueEngine, ScanKernel, SoaQueue};
use crate::workload::Workload;
use std::collections::VecDeque;

/// Maximum SMT ways any modeled core supports.
pub const MAX_WAYS: usize = 4;

/// Completion-ring size. Ring-aliasing safety requires the per-thread
/// in-flight window (`rob_window`) to stay at most `RING - DEP_WINDOW`.
const RING: usize = 256;

/// Words in the unissued-sequence bitmap covering the completion ring.
const RING_WORDS: usize = RING / 64;

/// Pending marker in the completion ring.
const PENDING: u64 = u64::MAX;

/// An instruction whose producer completes more than this many cycles in
/// the future is *parked* out of its issue queue until the data returns —
/// the analogue of POWER7's load-miss reject/re-issue mechanism. Without
/// parking, dependents of cache misses would fill the issue queues and
/// masquerade as the execution-resource congestion the DispHeld counter is
/// meant to capture.
const PARK_THRESHOLD: u64 = 16;

/// How a step should treat fetch and sleeping threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepMode {
    /// Normal execution.
    Normal,
    /// Draining before reconfiguration: no new fetch, and sleeping threads
    /// may still dispatch their buffered instructions so the pipeline can
    /// empty.
    Drain,
}

/// Scheduling state of one hardware context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtxState {
    /// Bound to a runnable software thread.
    Running,
    /// Software thread blocked until the given cycle.
    Sleeping(u64),
    /// Software thread finished and pipeline drained.
    Finished,
}

/// One registered producer wakeup: when the producer issues, clear the
/// blocked bit of `slot` in queue `qi` — provided the queue's generation
/// still equals `gen` (slots move on compaction/unpark, invalidating the
/// registration; the queue clears its blocked bits at the same time, so a
/// stale registration never strands a sleeper).
#[derive(Debug, Clone, Copy, Default)]
struct Waiter {
    qi: u8,
    slot: u16,
    gen: u16,
}

/// Consumers asleep on one completion-ring slot. Bounded: a producer
/// rarely has more than a couple of in-queue dependents, and on overflow
/// the consumer simply stays unblocked and rescans every cycle (the
/// legacy behavior), so the bound costs correctness nothing.
#[derive(Debug, Clone, Copy, Default)]
struct WaiterCell {
    n: u8,
    w: [Waiter; 2],
}

/// One hardware thread context.
#[derive(Debug, Clone)]
struct HwContext {
    /// Software thread bound to this context.
    sw_id: usize,
    state: CtxState,
    /// The workload reported `Finished` for this thread.
    fetch_done: bool,
    /// Fetched, not-yet-dispatched instructions (program order).
    ibuf: VecDeque<Instr>,
    ibuf_cap: usize,
    /// Sequence number of the next instruction to dispatch.
    dispatch_seq: u64,
    /// Completion cycles by `seq % RING`; `PENDING` while in flight.
    comp: Box<[u64; RING]>,
    /// Dispatched-but-not-issued sequence numbers as a bitmap over
    /// `seq % RING`. The in-flight window (< `RING`) guarantees each set
    /// bit maps to exactly one live sequence, so membership updates are
    /// O(1) where the previous sorted-`VecDeque` representation paid a
    /// binary search plus a memmove per issued instruction.
    unissued_bits: [u64; RING_WORDS],
    /// Set bits in `unissued_bits`.
    unissued_count: usize,
    /// Smallest live unissued sequence (meaningful when `unissued_count`
    /// is nonzero). Kept exact: insertions are monotonically increasing,
    /// and a removal only rescans when it removes the oldest itself.
    unissued_oldest: u64,
    /// In-flight window cap (ROB share).
    rob_cap: u64,
    /// Fetch suppressed until this cycle (branch-mispredict bubble).
    fetch_blocked_until: u64,
    /// Instructions parked out of their issue queue awaiting a long-latency
    /// producer: `(wake_cycle, origin_queue, entry)`.
    parked: Vec<(u64, usize, QEntry)>,
    /// Producer-indexed wakeup table, keyed by the producer's
    /// completion-ring slot (`seq % RING`): consumers whose producer had
    /// not issued when they were scanned sleep here instead of re-polling
    /// the ring every cycle. Drained by the producer's issue commit. Only
    /// the SoA engine registers entries; ring-slot collisions (a later
    /// `seq` sharing the slot) at worst wake a sleeper early, which is
    /// harmless — it rescans and re-registers.
    waiters: Box<[WaiterCell; RING]>,
    /// Last instruction-cache line probed (64-byte granularity), so
    /// straight-line code costs one probe per line, not per instruction.
    last_fetch_line: u64,
}

impl HwContext {
    fn new(sw_id: usize, ibuf_cap: usize, rob_cap: usize) -> HwContext {
        HwContext {
            sw_id,
            state: CtxState::Running,
            fetch_done: false,
            ibuf: VecDeque::with_capacity(ibuf_cap),
            ibuf_cap,
            dispatch_seq: 0,
            comp: Box::new([0; RING]),
            unissued_bits: [0; RING_WORDS],
            unissued_count: 0,
            unissued_oldest: 0,
            rob_cap: rob_cap as u64,
            fetch_blocked_until: 0,
            parked: Vec::new(),
            waiters: Box::new([WaiterCell::default(); RING]),
            last_fetch_line: u64::MAX,
        }
    }

    /// Is the register dependency of an instruction with sequence `seq` and
    /// distance `dep` satisfied at `now`?
    #[inline]
    fn dep_ready(&self, seq: u64, dep: u8, now: u64) -> bool {
        if dep == 0 {
            return true;
        }
        let dep = u64::from(dep);
        if seq < dep {
            return true; // depends on a pre-program instruction: ready
        }
        let c = self.comp[((seq - dep) as usize) % RING];
        c != PENDING && c <= now
    }

    /// Record a freshly dispatched (so unissued) sequence number.
    /// Sequences arrive in increasing order, so the oldest never moves on
    /// insert.
    #[inline]
    fn unissued_insert(&mut self, seq: u64) {
        let p = (seq as usize) % RING;
        self.unissued_bits[p >> 6] |= 1 << (p & 63);
        if self.unissued_count == 0 {
            self.unissued_oldest = seq;
        }
        self.unissued_count += 1;
    }

    /// Remove an issued sequence number from the unissued set.
    #[inline]
    fn unissued_remove(&mut self, seq: u64) {
        let p = (seq as usize) % RING;
        debug_assert!(self.unissued_bits[p >> 6] & (1 << (p & 63)) != 0);
        self.unissued_bits[p >> 6] &= !(1 << (p & 63));
        self.unissued_count -= 1;
        if self.unissued_count > 0 && seq == self.unissued_oldest {
            self.unissued_oldest = self.next_unissued_after(seq);
        }
    }

    /// Smallest member of the unissued set strictly greater than `seq`.
    /// All live sequences lie in `(seq, seq + RING)` (window bound), so one
    /// pass over the ring starting at `seq + 1` identifies each set bit's
    /// owner uniquely. Only called when the set is nonempty.
    fn next_unissued_after(&self, seq: u64) -> u64 {
        debug_assert!(self.unissued_count > 0);
        let mut s = seq + 1;
        loop {
            let b = (s as usize) % 64;
            let w = ((s as usize) % RING) >> 6;
            let word = self.unissued_bits[w] & (!0u64 << b);
            if word != 0 {
                return s - b as u64 + u64::from(word.trailing_zeros());
            }
            s = s - b as u64 + 64;
        }
    }

    /// The in-flight window is full: dispatching one more would let the
    /// completion ring alias.
    #[inline]
    fn rob_full(&self) -> bool {
        self.unissued_count != 0 && self.dispatch_seq - self.unissued_oldest >= self.rob_cap
    }

    /// Everything fetched has left the pipeline front end.
    fn drained(&self) -> bool {
        self.ibuf.is_empty() && self.unissued_count == 0 && self.parked.is_empty()
    }
}

/// One entry waiting in an issue queue.
#[derive(Debug, Clone, Copy)]
struct QEntry {
    hw: u8,
    seq: u64,
    /// Memoized earliest cycle the register dependency can be satisfied.
    /// Once a producer has issued, its completion cycle never changes
    /// ([`HwContext::rob_full`] prevents ring aliasing while the consumer
    /// is in flight), so the scan can skip the ring lookup until then.
    /// `0` means not yet known — re-derive from the completion ring.
    ready_at: u64,
    instr: Instr,
}

/// `QEntry::hw` sentinel marking a tombstoned (logically removed) entry.
/// Issue removes entries from the *middle* of a queue; physically shifting
/// the tail on every issue dominated the scan cost, so removal just marks
/// the slot dead. Dead slots are invisible to every consumer and are
/// reclaimed from the queue front (where issued-oldest-first makes them
/// cluster) at the start of each scan.
const TOMBSTONE: u8 = u8::MAX;

/// An issue queue feeding one or more ports (legacy entry layout).
#[derive(Debug, Clone)]
struct IssueQueue {
    entries: VecDeque<QEntry>,
    capacity: usize,
    /// Occupancy by hardware thread (SMT partitioning).
    per_thread: [u16; MAX_WAYS],
    per_thread_cap: usize,
    /// The whole queue is provably idle until this cycle: the last scan
    /// found *every* entry waiting on a producer with a known completion,
    /// and the earliest of those completions is this value. Any mutation
    /// of the queue (dispatch, unpark) resets it to `0` (= must scan).
    quiet_until: u64,
    /// Tombstoned entries still physically present in `entries`.
    dead: usize,
}

impl IssueQueue {
    /// Live (non-tombstoned) occupancy.
    fn live_len(&self) -> usize {
        self.entries.len() - self.dead
    }

    fn full(&self) -> bool {
        self.live_len() >= self.capacity
    }

    fn thread_share_full(&self, hw: usize) -> bool {
        usize::from(self.per_thread[hw]) >= self.per_thread_cap
    }
}

/// The issue-queue storage for one core: one variant per [`IssueEngine`].
/// Everything outside the issue scan goes through these accessors, so the
/// rest of the pipeline is engine-agnostic.
#[derive(Debug, Clone)]
enum QueueBank {
    /// `VecDeque<QEntry>` per queue (the reference engine).
    Legacy(Vec<IssueQueue>),
    /// Struct-of-arrays bitset queues (the default engine).
    Soa(Vec<SoaQueue>),
}

impl QueueBank {
    fn live_len(&self, qi: usize) -> usize {
        match self {
            QueueBank::Legacy(qs) => qs[qi].live_len(),
            QueueBank::Soa(qs) => qs[qi].live_len(),
        }
    }

    fn full(&self, qi: usize) -> bool {
        match self {
            QueueBank::Legacy(qs) => qs[qi].full(),
            QueueBank::Soa(qs) => qs[qi].full(),
        }
    }

    fn thread_share_full(&self, qi: usize, hw: usize) -> bool {
        match self {
            QueueBank::Legacy(qs) => qs[qi].thread_share_full(hw),
            QueueBank::Soa(qs) => qs[qi].thread_share_full(hw),
        }
    }

    /// Append a freshly dispatched entry (readiness unknown).
    fn push_back(&mut self, qi: usize, hw: u8, seq: u64, instr: Instr) {
        match self {
            QueueBank::Legacy(qs) => {
                let q = &mut qs[qi];
                q.entries.push_back(QEntry {
                    hw,
                    seq,
                    ready_at: 0,
                    instr,
                });
                q.per_thread[hw as usize] += 1;
                q.quiet_until = 0;
            }
            QueueBank::Soa(qs) => qs[qi].push_back(hw, seq, 0, instr),
        }
    }

    /// Re-insert an unparked entry at the queue front (it is older than
    /// anything dispatched since it left).
    fn push_front(&mut self, qi: usize, e: QEntry) {
        match self {
            QueueBank::Legacy(qs) => {
                let q = &mut qs[qi];
                q.entries.push_front(e);
                q.per_thread[e.hw as usize] += 1;
                q.quiet_until = 0;
            }
            QueueBank::Soa(qs) => qs[qi].push_front(e.hw, e.seq, e.ready_at, e.instr),
        }
    }

    fn set_per_thread_cap(&mut self, qi: usize, cap: usize) {
        match self {
            QueueBank::Legacy(qs) => qs[qi].per_thread_cap = cap,
            QueueBank::Soa(qs) => qs[qi].per_thread_cap = cap,
        }
    }
}

/// Outcome of [`Core::try_issue`] for one candidate entry.
enum TryIssue {
    /// No compatible free port this cycle; the entry stays queued and
    /// untouched.
    NoPort,
    /// A missing load/store was turned away by a full load-miss queue;
    /// the entry stays queued. Rejection counters were charged.
    LmqReject,
    /// Issued and committed: completion recorded, counters charged. The
    /// caller removes the entry from its queue.
    Issued,
}

/// A simulated SMT core.
#[derive(Debug, Clone)]
pub struct Core {
    /// Global core id (indexes the memory system).
    pub id: usize,
    ways: usize,
    ctxs: Vec<HwContext>,
    bank: QueueBank,
    /// Completion cycles of outstanding load misses (shared LMQ / MSHRs).
    lmq: Vec<u64>,
    lmq_capacity: usize,
    /// Earliest completion among outstanding LMQ entries (`u64::MAX` when
    /// none): lets wake/retire skip the per-cycle sweep while no slot can
    /// free.
    lmq_min: u64,
    fetch_rr: usize,
    disp_rr: usize,
    /// Candidate queues per instruction class.
    class_queues: [Vec<usize>; NUM_CLASSES],
    /// Port-acceptance bitmasks per instruction class (bit `p` set when
    /// port `p` can issue the class), precomputed from the descriptor so
    /// the issue scan does not walk `PortDesc::accepts` vectors.
    class_port_mask: [u32; NUM_CLASSES],
    /// Ports fed by each queue.
    ports_by_queue: Vec<Vec<usize>>,
    /// Bitmask of the ports fed by each queue.
    queue_port_mask: Vec<u32>,
    /// Scratch: port busy bitmask for the current cycle.
    port_used: u32,
    /// Scratch: bit `qi` set when queue `qi` had a load rejected for want
    /// of an LMQ slot this cycle.
    queue_lmq_reject: u32,
    /// Runnable-thread count the dynamic-partitioning caps were last
    /// computed for (0 = never).
    caps_for_active: usize,
    /// Optional per-core gshare predictor (shared by the hardware threads).
    bpred: Option<BranchPredictor>,
    /// SIMD word kernel resolved for this host (SoA engine only).
    use_simd: bool,
    /// Timing a profiled step: `try_issue` attributes cache-walk ticks.
    profiling: bool,
    /// Cache-walk ticks accumulated during the current profiled issue
    /// phase.
    prof_mem_ticks: u64,
    /// Wakeups drained by `try_issue` from the issuing producer's waiter
    /// cell, handed back to the SoA scan (which owns the queue storage) to
    /// clear the blocked bits. Empty between issue commits.
    woken: Vec<Waiter>,
    /// Core-level counters.
    pub counters: CoreCounters,
}

impl Core {
    /// Build a core at SMT level `ways` with the default engine and
    /// kernel, binding hardware context `k` to software thread `sw_ids[k]`.
    pub fn new(arch: &ArchDescriptor, id: usize, sw_ids: &[usize]) -> Core {
        Core::with_engine(
            arch,
            id,
            sw_ids,
            IssueEngine::default(),
            ScanKernel::default(),
        )
    }

    /// Build a core with an explicit issue engine and scan kernel.
    pub fn with_engine(
        arch: &ArchDescriptor,
        id: usize,
        sw_ids: &[usize],
        engine: IssueEngine,
        kernel: ScanKernel,
    ) -> Core {
        let ways = sw_ids.len();
        assert!(
            (1..=MAX_WAYS).contains(&ways),
            "1..=4 hardware threads per core"
        );
        assert!(
            ways <= arch.max_smt.ways(),
            "core does not support {ways}-way SMT"
        );
        assert!(
            arch.queues.len() <= 32,
            "queue bitmasks require at most 32 issue queues"
        );
        let ibuf_cap = arch.per_thread_cap(arch.ibuf_capacity, ways);
        let rob_cap = arch.per_thread_cap(arch.rob_window, ways);
        let ctxs = sw_ids
            .iter()
            .map(|&sw| HwContext::new(sw, ibuf_cap, rob_cap))
            .collect();
        let bank = match engine {
            IssueEngine::Legacy => QueueBank::Legacy(
                arch.queues
                    .iter()
                    .map(|q| IssueQueue {
                        entries: VecDeque::with_capacity(q.capacity),
                        quiet_until: 0,
                        dead: 0,
                        capacity: q.capacity,
                        per_thread: [0; MAX_WAYS],
                        per_thread_cap: arch.per_thread_cap(q.capacity, ways),
                    })
                    .collect(),
            ),
            IssueEngine::Soa => QueueBank::Soa(
                arch.queues
                    .iter()
                    .map(|q| SoaQueue::new(q.capacity, arch.per_thread_cap(q.capacity, ways)))
                    .collect(),
            ),
        };
        let mut class_queues: [Vec<usize>; NUM_CLASSES] = Default::default();
        for class in InstrClass::ALL {
            let mut qs: Vec<usize> = arch
                .ports
                .iter()
                .filter(|p| p.accepts(class))
                .map(|p| p.queue)
                .collect();
            qs.sort_unstable();
            qs.dedup();
            class_queues[class.index()] = qs;
        }
        let mut ports_by_queue = vec![Vec::new(); arch.queues.len()];
        for (pi, p) in arch.ports.iter().enumerate() {
            ports_by_queue[p.queue].push(pi);
        }
        Core {
            id,
            ways,
            ctxs,
            bank,
            lmq: Vec::with_capacity(arch.lmq_capacity),
            lmq_capacity: arch.lmq_capacity,
            lmq_min: u64::MAX,
            fetch_rr: 0,
            disp_rr: 0,
            class_queues,
            class_port_mask: arch.class_port_masks(),
            queue_port_mask: ports_by_queue
                .iter()
                .map(|ps| ps.iter().fold(0u32, |m, &p| m | (1 << p)))
                .collect(),
            ports_by_queue,
            port_used: 0,
            queue_lmq_reject: 0,
            caps_for_active: 0,
            bpred: arch.branch_predictor.map(BranchPredictor::new),
            use_simd: soa::resolve_kernel(kernel),
            profiling: false,
            prof_mem_ticks: 0,
            woken: Vec::new(),
            counters: CoreCounters::default(),
        }
    }

    /// The issue engine this core was built with.
    pub fn engine(&self) -> IssueEngine {
        match self.bank {
            QueueBank::Legacy(_) => IssueEngine::Legacy,
            QueueBank::Soa(_) => IssueEngine::Soa,
        }
    }

    /// Under [`Partitioning::Dynamic`], per-thread shares track the number
    /// of currently runnable hardware threads: a core whose siblings are
    /// asleep hands the whole machine to the remaining thread, as POWER7's
    /// dynamic SMT modes do. No-op for other policies or when the runnable
    /// count has not changed.
    fn refresh_dynamic_caps(&mut self, arch: &ArchDescriptor) {
        if arch.partitioning != Partitioning::Dynamic {
            return;
        }
        let active = self
            .ctxs
            .iter()
            .filter(|c| c.state == CtxState::Running)
            .count()
            .max(1);
        if active == self.caps_for_active {
            return;
        }
        self.caps_for_active = active;
        let ibuf_cap = arch.per_thread_cap(arch.ibuf_capacity, active);
        let rob_cap = arch.per_thread_cap(arch.rob_window, active);
        for ctx in &mut self.ctxs {
            ctx.ibuf_cap = ibuf_cap;
            ctx.rob_cap = rob_cap as u64;
        }
        for (qi, desc) in arch.queues.iter().enumerate() {
            self.bank
                .set_per_thread_cap(qi, arch.per_thread_cap(desc.capacity, active));
        }
    }

    /// Number of hardware threads.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The pipeline holds no in-flight instructions.
    pub fn drained(&self) -> bool {
        self.ctxs.iter().all(|c| c.drained())
            && (0..self.ports_by_queue.len()).all(|qi| self.bank.live_len(qi) == 0)
    }

    /// All bound software threads have finished and drained.
    pub fn finished(&self) -> bool {
        self.ctxs.iter().all(|c| c.fetch_done && c.drained())
    }

    /// Total occupancy of queue `qi` (diagnostics/tests).
    pub fn queue_len(&self, qi: usize) -> usize {
        self.bank.live_len(qi)
    }

    /// Check internal bookkeeping invariants; called every cycle in debug
    /// builds and available to tests in release builds. Panics with a
    /// description on violation.
    pub fn check_invariants(&self) {
        // Unparked entries re-enter their origin queue ahead of dispatch
        // and may transiently push it past nominal capacity (dispatch still
        // respects the cap, so the overflow drains); the hard bound is
        // capacity plus everything that could have been parked.
        let max_parked: usize = self.ctxs.iter().map(|c| c.rob_cap as usize).sum();
        let mut queued_by_hw = [0usize; MAX_WAYS];
        match &self.bank {
            QueueBank::Legacy(qs) => {
                for (qi, q) in qs.iter().enumerate() {
                    assert!(
                        q.live_len() <= q.capacity + max_parked,
                        "queue {qi} over hard bound: {} > {} + {max_parked}",
                        q.live_len(),
                        q.capacity
                    );
                    assert_eq!(
                        q.dead,
                        q.entries.iter().filter(|e| e.hw == TOMBSTONE).count(),
                        "queue {qi} dead-count out of sync"
                    );
                    let mut per_thread = [0usize; MAX_WAYS];
                    for e in &q.entries {
                        if e.hw != TOMBSTONE {
                            per_thread[e.hw as usize] += 1;
                            queued_by_hw[e.hw as usize] += 1;
                        }
                    }
                    for (t, &count) in per_thread.iter().enumerate().take(self.ways) {
                        assert_eq!(
                            count,
                            usize::from(q.per_thread[t]),
                            "queue {qi} per-thread occupancy out of sync for hw {t}"
                        );
                    }
                }
            }
            QueueBank::Soa(qs) => {
                for (qi, q) in qs.iter().enumerate() {
                    assert!(
                        q.live_len() <= q.capacity + max_parked,
                        "queue {qi} over hard bound: {} > {} + {max_parked}",
                        q.live_len(),
                        q.capacity
                    );
                    let mut per_thread = [0usize; MAX_WAYS];
                    let mut live = 0usize;
                    q.for_each_live(|s| {
                        let hw = q.hw[s] as usize;
                        per_thread[hw] += 1;
                        queued_by_hw[hw] += 1;
                        live += 1;
                        let unk = (q.unknown[s >> 6] >> (s & 63)) & 1;
                        assert_eq!(
                            unk == 1,
                            q.ready_at[s] == 0,
                            "queue {qi} slot {s}: unknown bit out of sync with ready_at"
                        );
                        true
                    });
                    assert_eq!(live, q.live_len(), "queue {qi} live-count out of sync");
                    for (t, &count) in per_thread.iter().enumerate().take(self.ways) {
                        assert_eq!(
                            count,
                            usize::from(q.per_thread[t]),
                            "queue {qi} per-thread occupancy out of sync for hw {t}"
                        );
                    }
                }
            }
        }
        for (t, ctx) in self.ctxs.iter().enumerate() {
            // Every unissued seq is accounted for in exactly one place:
            // some issue queue or the parked list.
            assert_eq!(
                queued_by_hw[t] + ctx.parked.len(),
                ctx.unissued_count,
                "hw {t}: queued {} + parked {} != unissued {}",
                queued_by_hw[t],
                ctx.parked.len(),
                ctx.unissued_count
            );
            assert_eq!(
                ctx.unissued_count,
                ctx.unissued_bits
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum::<usize>(),
                "hw {t}: unissued bitmap popcount out of sync"
            );
            // The in-flight window respects the completion-ring bound.
            if ctx.unissued_count > 0 {
                let oldest = ctx.unissued_oldest;
                let p = (oldest as usize) % RING;
                assert!(
                    ctx.unissued_bits[p >> 6] & (1 << (p & 63)) != 0,
                    "hw {t}: unissued_oldest {oldest} not in the bitmap"
                );
                assert!(
                    ctx.dispatch_seq - oldest <= (RING - crate::isa::DEP_WINDOW) as u64,
                    "hw {t}: in-flight window {} breaks ring safety",
                    ctx.dispatch_seq - oldest
                );
            }
            assert!(
                ctx.ibuf.len() <= ctx.ibuf_cap.max(1),
                "hw {t}: ibuf over cap"
            );
        }
        assert!(
            self.lmq.len() <= self.lmq_capacity,
            "LMQ over capacity: {} > {}",
            self.lmq.len(),
            self.lmq_capacity
        );
        assert_eq!(
            self.lmq_min,
            self.lmq.iter().copied().min().unwrap_or(u64::MAX),
            "lmq_min out of sync"
        );
    }

    /// Advance one cycle.
    ///
    /// Returns an *activity count*: the number of state-changing events
    /// this cycle (wakes, unparks, retires, issues, parks, LMQ rejections,
    /// dispatches, fetch results). A return of zero means the cycle was
    /// pure bookkeeping — nothing architectural moved — which is the
    /// precondition [`Simulation`](crate::machine::Simulation) uses before
    /// asking [`Core::quiet_until`] how far it can fast-forward.
    pub fn step<W: Workload + ?Sized>(
        &mut self,
        arch: &ArchDescriptor,
        now: u64,
        mode: StepMode,
        workload: &mut W,
        mem: &mut MemorySystem,
        sw: &mut [ThreadCounters],
    ) -> u32 {
        let mut activity = self.wake_and_retire(now);
        self.refresh_dynamic_caps(arch);
        activity += self.issue(arch, now, mem, sw);
        activity += self.dispatch(arch, now, mode, sw);
        if mode == StepMode::Normal {
            activity += self.fetch(arch, now, workload, mem, sw);
        }
        self.account(now, sw);
        #[cfg(debug_assertions)]
        self.check_invariants();
        activity
    }

    /// [`Core::step`] with per-phase tick attribution into `prof`. Runs
    /// the exact same phases (architectural state and counters advance
    /// identically); the only addition is timestamping, plus cache-walk
    /// ticks being split out of the issue phase via
    /// [`Core::try_issue`]'s profiling hook.
    #[allow(clippy::too_many_arguments)]
    pub fn step_profiled<W: Workload + ?Sized>(
        &mut self,
        arch: &ArchDescriptor,
        now: u64,
        mode: StepMode,
        workload: &mut W,
        mem: &mut MemorySystem,
        sw: &mut [ThreadCounters],
        prof: &mut PhaseProfile,
    ) -> u32 {
        self.profiling = true;
        self.prof_mem_ticks = 0;
        let t0 = profile::ticks();
        let mut activity = self.wake_and_retire(now);
        self.refresh_dynamic_caps(arch);
        let t1 = profile::ticks();
        activity += self.issue(arch, now, mem, sw);
        let t2 = profile::ticks();
        activity += self.dispatch(arch, now, mode, sw);
        let t3 = profile::ticks();
        if mode == StepMode::Normal {
            activity += self.fetch(arch, now, workload, mem, sw);
        }
        let t4 = profile::ticks();
        self.account(now, sw);
        #[cfg(debug_assertions)]
        self.check_invariants();
        let t5 = profile::ticks();
        self.profiling = false;
        prof.retire += t1 - t0;
        prof.issue += (t2 - t1).saturating_sub(self.prof_mem_ticks);
        prof.mem += self.prof_mem_ticks;
        prof.dispatch += t3 - t2;
        prof.fetch += t4 - t3;
        prof.bookkeeping += t5 - t4;
        prof.steps += 1;
        activity
    }

    /// Whether queue `qi` is congested from the point of view of an
    /// instruction of `class`: every port of the queue that could issue the
    /// class was busy this cycle, or (for loads) the queue had a load
    /// rejected because the load-miss queue was full.
    fn queue_congested_for(&self, qi: usize, class: InstrClass) -> bool {
        if class.is_mem() && self.queue_lmq_reject & (1 << qi) != 0 {
            return true;
        }
        let accepts = self.class_port_mask[class.index()] & self.queue_port_mask[qi];
        accepts != 0 && accepts & !self.port_used == 0
    }

    fn wake_and_retire(&mut self, now: u64) -> u32 {
        let mut activity = 0;
        // The LMQ sweep only matters on cycles where a slot can actually
        // free; `lmq_min` makes the no-op case one compare.
        if self.lmq_min <= now {
            self.lmq.retain(|&t| t > now);
            self.lmq_min = self.lmq.iter().copied().min().unwrap_or(u64::MAX);
        }
        for hw in 0..self.ctxs.len() {
            // Re-insert parked instructions whose producer data arrived.
            // They rejoin at the front of their origin queue (they are
            // older than anything dispatched since) and may transiently
            // overflow its capacity; dispatch respects capacity so the
            // overflow drains immediately.
            let ctx = &mut self.ctxs[hw];
            let mut i = 0;
            while i < ctx.parked.len() {
                if ctx.parked[i].0 <= now {
                    let (_, qi, e) = ctx.parked.swap_remove(i);
                    self.bank.push_front(qi, e);
                    activity += 1;
                } else {
                    i += 1;
                }
            }
            let ctx = &mut self.ctxs[hw];
            match ctx.state {
                CtxState::Sleeping(until) if now >= until => {
                    ctx.state = CtxState::Running;
                    activity += 1;
                }
                CtxState::Running if ctx.fetch_done && ctx.drained() => {
                    ctx.state = CtxState::Finished;
                    activity += 1;
                }
                _ => {}
            }
        }
        activity
    }

    /// The issue stage: detach the queue bank (so the engines can borrow
    /// the queues and `self` disjointly) and run the engine it encodes.
    fn issue(
        &mut self,
        arch: &ArchDescriptor,
        now: u64,
        mem: &mut MemorySystem,
        sw: &mut [ThreadCounters],
    ) -> u32 {
        self.port_used = 0;
        self.queue_lmq_reject = 0;
        // An empty `Vec` allocates nothing, so the swap is two pointer-size
        // stores each way.
        let mut bank = std::mem::replace(&mut self.bank, QueueBank::Legacy(Vec::new()));
        let activity = match &mut bank {
            QueueBank::Legacy(qs) => self.issue_legacy(qs, arch, now, mem, sw),
            QueueBank::Soa(qs) => self.issue_soa(qs, arch, now, mem, sw),
        };
        self.bank = bank;
        activity
    }

    /// The reference per-entry scan over `VecDeque<QEntry>` queues.
    fn issue_legacy(
        &mut self,
        qs: &mut [IssueQueue],
        arch: &ArchDescriptor,
        now: u64,
        mem: &mut MemorySystem,
        sw: &mut [ThreadCounters],
    ) -> u32 {
        let mut activity = 0;
        // Indexing (not `iter_mut`) because the body re-borrows `qs[qi]` in
        // short scopes around `try_issue`, which needs `self` mutably.
        #[allow(clippy::needless_range_loop)]
        for qi in 0..qs.len() {
            // Scan-skip: the previous scan proved every entry is waiting on
            // a producer whose (immutable) completion lies in the future,
            // and nothing was added to the queue since. A scan now would
            // inspect each entry, change nothing, and issue nothing —
            // identical to not scanning at all.
            if qs[qi].quiet_until > now {
                continue;
            }
            {
                let q = &mut qs[qi];
                while q.entries.front().is_some_and(|e| e.hw == TOMBSTONE) {
                    q.entries.pop_front();
                    q.dead -= 1;
                }
                // Parking punches holes mid-queue that front-draining can't
                // reach; compact before they make the physical walk longer
                // than the live one.
                if q.dead >= soa::COMPACT_DEAD {
                    q.entries.retain(|e| e.hw != TOMBSTONE);
                    q.dead = 0;
                }
            }
            let mut scanned = 0usize;
            let mut i = 0usize;
            // A scan is "pure waiting" when every inspected entry was
            // provably un-ready with a *known* producer completion and the
            // scan covered the whole queue; only then may the next scans be
            // skipped, until the earliest of those completions.
            let mut all_waiting = true;
            let mut next_ready = u64::MAX;
            while i < qs[qi].entries.len() && scanned < arch.issue_scan_depth {
                // Stop early if every port on this queue is taken.
                if self.port_used & self.queue_port_mask[qi] == self.queue_port_mask[qi] {
                    all_waiting = false;
                    break;
                }
                // Read only the scalars the waiting paths need — a full
                // `QEntry` copy per inspection is measurable traffic at
                // tens of inspections per core-cycle.
                let ent = &qs[qi].entries[i];
                let hw8 = ent.hw;
                if hw8 == TOMBSTONE {
                    i += 1;
                    continue;
                }
                scanned += 1;
                let ready_at = ent.ready_at;
                if ready_at > now {
                    // Still waiting on its memoized producer completion.
                    next_ready = next_ready.min(ready_at);
                    i += 1;
                    continue;
                }
                let seq = ent.seq;
                let dep_dist = ent.instr.dep_dist;
                let ctx = &self.ctxs[hw8 as usize];
                // `ready_at` in 1..=now means readiness was already proven
                // on an earlier scan (completions are immutable and
                // readiness is monotone in `now`), so the dependence check
                // can be skipped for ready-but-portless entries that get
                // re-inspected every cycle.
                let known_ready = ready_at != 0;
                if !known_ready && !ctx.dep_ready(seq, dep_dist, now) {
                    // Waiting on a long-latency producer (a cache miss)?
                    // Park it out of the queue until the data returns, as
                    // POWER7's reject mechanism does, so miss dependents do
                    // not impersonate execution-resource congestion.
                    if dep_dist > 0 && seq >= u64::from(dep_dist) {
                        let c = ctx.comp[((seq - u64::from(dep_dist)) as usize) % RING];
                        if c != PENDING {
                            if c > now + PARK_THRESHOLD {
                                let hw = hw8 as usize;
                                let q = &mut qs[qi];
                                let e = q.entries[i];
                                q.entries[i].hw = TOMBSTONE;
                                q.dead += 1;
                                q.per_thread[hw] -= 1;
                                self.ctxs[hw].parked.push((c, qi, e));
                                activity += 1;
                                all_waiting = false;
                                i += 1;
                                continue;
                            }
                            // Completion known and near: memoize it.
                            qs[qi].entries[i].ready_at = c;
                            next_ready = next_ready.min(c);
                            i += 1;
                            continue;
                        }
                    }
                    // Producer not yet issued: readiness unknowable ahead
                    // of time, so this queue must be rescanned every cycle.
                    all_waiting = false;
                    i += 1;
                    continue;
                }
                all_waiting = false;
                if !known_ready {
                    // Memoize proven readiness (`now.max(1)` keeps the
                    // marker out of the 0 = unknown encoding at cycle 0).
                    qs[qi].entries[i].ready_at = now.max(1);
                }
                let e = qs[qi].entries[i];
                match self.try_issue(arch, qi, e.hw as usize, e.seq, e.instr, now, mem, sw) {
                    TryIssue::Issued => {
                        let q = &mut qs[qi];
                        q.entries[i].hw = TOMBSTONE;
                        q.dead += 1;
                        q.per_thread[e.hw as usize] -= 1;
                        activity += 1;
                    }
                    TryIssue::LmqReject => activity += 1,
                    TryIssue::NoPort => {}
                }
                i += 1;
            }
            // Pure-waiting scan that covered the whole queue: nothing can
            // issue, park, or reject before the earliest memoized producer
            // completion, so skip scanning until then. (An empty queue is
            // quiet forever; dispatch/unpark insertions reset the mark.)
            let q = &mut qs[qi];
            if all_waiting && i >= q.entries.len() {
                debug_assert!(next_ready > now);
                q.quiet_until = next_ready;
            }
        }
        activity
    }

    /// The struct-of-arrays scan: classify each 64-slot word with mask
    /// arithmetic ([`soa::wait_mask`]) and run the shared slow path only on
    /// the candidate bits, in age order — the same inspection order and
    /// transitions as [`Core::issue_legacy`], proven bit-identical by the
    /// differential suite.
    fn issue_soa(
        &mut self,
        qs: &mut [SoaQueue],
        arch: &ArchDescriptor,
        now: u64,
        mem: &mut MemorySystem,
        sw: &mut [ThreadCounters],
    ) -> u32 {
        let mut activity = 0;
        for qi in 0..qs.len() {
            // Same scan-skip as the legacy engine.
            if qs[qi].quiet_until > now {
                continue;
            }
            let depth = arch.issue_scan_depth;
            // Quiescence needs the *whole* queue inspected; with the live
            // count at or under the scan depth the budget below cannot
            // truncate, so coverage is decidable up front.
            let covered = qs[qi].live_len() <= depth;
            let qpm = self.queue_port_mask[qi];
            let mut all_waiting = true;
            let mut budget = depth;
            let words = qs[qi].occ.len();
            'words: for w in 0..words {
                if budget == 0 {
                    break;
                }
                let q = &qs[qi];
                let mut visible = q.occ[w];
                if visible == 0 {
                    continue;
                }
                let n = visible.count_ones() as usize;
                if n > budget {
                    visible = soa::keep_lowest_set(visible, budget);
                    budget = 0;
                } else {
                    budget -= n;
                }
                let unknown = q.unknown[w] & visible;
                let known = visible & !unknown;
                let blocked = q.blocked[w] & visible;
                let qgen = q.gen;
                let base = w << 6;
                // Waiting-with-known-completion slots are skipped wholesale
                // by the mask compare; consumers asleep on a producer
                // wakeup are skipped by `blocked`. The slow path below sees
                // exactly the slots the legacy walk would have acted on:
                // known-ready ones, plus every unknown one whose readiness
                // could have changed since it was last inspected.
                let wait = soa::wait_mask(self.use_simd, known, &q.ready_at[base..base + 64], now);
                if blocked != 0 {
                    // Sleeping consumers veto quiescence exactly as their
                    // per-cycle rescan would have (and have no other effect
                    // in the legacy walk).
                    all_waiting = false;
                }
                let mut cand = (known & !wait) | (unknown & !blocked);
                while cand != 0 {
                    // Stop early if every port on this queue is taken
                    // (checked per candidate, exactly where the legacy walk
                    // could break).
                    if self.port_used & qpm == qpm {
                        all_waiting = false;
                        break 'words;
                    }
                    let b = cand.trailing_zeros() as usize;
                    cand &= cand - 1;
                    let slot = base + b;
                    let q = &qs[qi];
                    let hw = q.hw[slot] as usize;
                    let seq = q.seq[slot];
                    let instr = q.instr[slot];
                    if unknown & (1 << b) != 0 {
                        let dep_dist = instr.dep_dist;
                        let ctx = &self.ctxs[hw];
                        if !ctx.dep_ready(seq, dep_dist, now) {
                            if dep_dist > 0 && seq >= u64::from(dep_dist) {
                                let p = ((seq - u64::from(dep_dist)) as usize) % RING;
                                let c = ctx.comp[p];
                                if c != PENDING {
                                    if c > now + PARK_THRESHOLD {
                                        let e = QEntry {
                                            hw: hw as u8,
                                            seq,
                                            ready_at: 0,
                                            instr,
                                        };
                                        qs[qi].tombstone(slot, hw);
                                        self.ctxs[hw].parked.push((c, qi, e));
                                        activity += 1;
                                        all_waiting = false;
                                    } else {
                                        // Completion known and near:
                                        // memoize it.
                                        let q = &mut qs[qi];
                                        q.ready_at[slot] = c;
                                        q.clear_unknown(slot);
                                    }
                                    continue;
                                }
                                // Producer not yet issued: sleep this
                                // consumer on the producer's issue event
                                // instead of re-polling the ring every
                                // cycle. If the cell is full even after
                                // purging dead registrations, the entry
                                // simply keeps rescanning (the legacy
                                // behavior) — the bound costs correctness
                                // nothing.
                                all_waiting = false;
                                let cell = &mut self.ctxs[hw].waiters[p];
                                if cell.n as usize == cell.w.len() {
                                    let mut k = 0;
                                    while k < cell.n {
                                        let e = cell.w[k as usize];
                                        let eq = &qs[e.qi as usize];
                                        if e.gen != eq.gen || !eq.is_blocked(e.slot as usize) {
                                            cell.n -= 1;
                                            cell.w[k as usize] = cell.w[cell.n as usize];
                                        } else {
                                            k += 1;
                                        }
                                    }
                                }
                                if (cell.n as usize) < cell.w.len() {
                                    cell.w[cell.n as usize] = Waiter {
                                        qi: qi as u8,
                                        slot: slot as u16,
                                        gen: qgen,
                                    };
                                    cell.n += 1;
                                    qs[qi].set_blocked(slot);
                                }
                                continue;
                            }
                            // Producer unreachable through the ring window:
                            // rescan every cycle.
                            all_waiting = false;
                            continue;
                        }
                        // Proven ready: memoize, then try the ports.
                        let q = &mut qs[qi];
                        q.ready_at[slot] = now.max(1);
                        q.clear_unknown(slot);
                    }
                    all_waiting = false;
                    match self.try_issue(arch, qi, hw, seq, instr, now, mem, sw) {
                        TryIssue::Issued => {
                            qs[qi].tombstone(slot, hw);
                            activity += 1;
                            if !self.woken.is_empty() {
                                // The issue was a wakeup event: clear the
                                // sleepers' blocked bits. A consumer younger
                                // than the issuing producer in this same
                                // word re-enters the scan immediately — the
                                // legacy walk would reach it later this very
                                // cycle; everyone else is rescanned when
                                // their word or queue next comes up.
                                let mut woken = std::mem::take(&mut self.woken);
                                for wk in woken.drain(..) {
                                    let wq = &mut qs[wk.qi as usize];
                                    let s = wk.slot as usize;
                                    if wk.gen != wq.gen || !wq.is_blocked(s) {
                                        continue;
                                    }
                                    wq.clear_blocked(s);
                                    if wk.qi as usize == qi
                                        && s >> 6 == w
                                        && s > slot
                                        && visible & (1 << (s & 63)) != 0
                                    {
                                        cand |= 1 << (s & 63);
                                    }
                                }
                                self.woken = woken;
                            }
                        }
                        TryIssue::LmqReject => activity += 1,
                        TryIssue::NoPort => {}
                    }
                }
            }
            if all_waiting && covered {
                // Every live entry is known-waiting, so the earliest
                // memoized completion bounds the queue's next possible
                // event. Amortized: runs once per quiet period, not per
                // cycle.
                let q = &mut qs[qi];
                let mut next_ready = u64::MAX;
                for w in 0..words {
                    let mut bits = q.occ[w];
                    while bits != 0 {
                        let s = (w << 6) + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        next_ready = next_ready.min(q.ready_at[s]);
                    }
                }
                debug_assert!(next_ready > now);
                q.quiet_until = next_ready;
            }
        }
        activity
    }

    /// The engine-shared slow path for one ready-or-unknown-ready entry:
    /// pick a compatible free port, walk the memory hierarchy for
    /// loads/stores (which may reject on a full LMQ), and commit the issue
    /// (completion ring, counters, branch outcome, port busy masks). The
    /// caller owns queue storage and removes the entry on
    /// [`TryIssue::Issued`].
    #[allow(clippy::too_many_arguments)]
    fn try_issue(
        &mut self,
        arch: &ArchDescriptor,
        qi: usize,
        hw: usize,
        seq: u64,
        instr: Instr,
        now: u64,
        mem: &mut MemorySystem,
        sw: &mut [ThreadCounters],
    ) -> TryIssue {
        // Pick a free compatible port (and its pair for stores). Port
        // indices ascend within a queue, so the lowest set bit of the
        // eligibility mask is the same port the reference per-port walk
        // would choose.
        let accepts = self.class_port_mask[instr.class.index()];
        let free = accepts & self.queue_port_mask[qi] & !self.port_used;
        if free == 0 {
            return TryIssue::NoPort;
        }
        let port = if instr.class == InstrClass::Store {
            let mut chosen: Option<usize> = None;
            let mut bits = free;
            while bits != 0 {
                let p = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if let Some(pair) = arch.ports[p].store_pair {
                    if self.port_used & (1 << pair) != 0 {
                        continue;
                    }
                }
                chosen = Some(p);
                break;
            }
            let Some(p) = chosen else {
                return TryIssue::NoPort;
            };
            p
        } else {
            free.trailing_zeros() as usize
        };

        // Resolve execution latency (and the memory path for
        // loads/stores).
        let sw_id = self.ctxs[hw].sw_id;
        let completion;
        match instr.class {
            InstrClass::Load | InstrClass::Store => {
                let t0 = if self.profiling { profile::ticks() } else { 0 };
                let l1_hit = mem.probe_l1(self.id, instr.addr);
                if !l1_hit && self.lmq.len() >= self.lmq_capacity {
                    // No miss slot: the access cannot issue this cycle;
                    // leave it queued.
                    if self.profiling {
                        self.prof_mem_ticks += profile::ticks() - t0;
                    }
                    self.counters.lmq_rejections += 1;
                    self.queue_lmq_reject |= 1 << qi;
                    return TryIssue::LmqReject;
                }
                let out = mem.access(self.id, instr.addr, instr.remote, now);
                if self.profiling {
                    self.prof_mem_ticks += profile::ticks() - t0;
                }
                if instr.class == InstrClass::Load {
                    completion = now + out.latency;
                    if out.l1_miss {
                        self.lmq.push(completion);
                        self.lmq_min = self.lmq_min.min(completion);
                    }
                } else {
                    // Write-allocate: the store retires quickly, but its
                    // line fill occupies a miss-queue slot until the data
                    // arrives, so store misses are throttled by the same
                    // MSHR pool as loads (otherwise a store-heavy stream
                    // would grow the memory backlog without bound).
                    completion = now + arch.latencies.store;
                    if out.l1_miss {
                        let fill = now + out.latency;
                        self.lmq.push(fill);
                        self.lmq_min = self.lmq_min.min(fill);
                    }
                }
                let t = &mut sw[sw_id];
                t.mem_refs += 1;
                t.l1d_misses += u64::from(out.l1_miss);
                t.l2_misses += u64::from(out.l2_miss);
                t.l3_misses += u64::from(out.l3_miss);
                t.remote_accesses += u64::from(out.remote);
            }
            class => {
                completion = now + arch.latency_of(class);
            }
        }

        // Commit the issue.
        let ctx = &mut self.ctxs[hw];
        ctx.comp[(seq as usize) % RING] = completion;
        ctx.unissued_remove(seq);
        // This issue is the wakeup event consumers sleeping on this ring
        // slot registered for. Queue storage belongs to the caller, so
        // hand the drained registrations back through `woken` (always
        // empty under the legacy engine, which never registers).
        let cell = &mut ctx.waiters[(seq as usize) % RING];
        if cell.n > 0 {
            let cell = std::mem::take(cell);
            self.woken.extend_from_slice(&cell.w[..cell.n as usize]);
        }
        let t = &mut sw[sw_id];
        t.record_issue(instr.class, port, instr.work);
        if instr.class == InstrClass::Branch {
            t.branches += 1;
            // With a predictor model the misprediction emerges from the
            // PC/outcome stream (including cross-thread table aliasing);
            // otherwise the workload's pre-rolled flag decides.
            let mispredicted = match self.bpred.as_mut() {
                Some(bp) => bp.predict_and_update(instr.pc, instr.taken),
                None => instr.mispredict,
            };
            if mispredicted {
                t.branch_mispredicts += 1;
                self.ctxs[hw].fetch_blocked_until = completion + arch.mispredict_penalty;
            }
        }
        self.port_used |= 1 << port;
        self.counters.issue_slots_used += 1;
        if instr.class == InstrClass::Store {
            if let Some(pair) = arch.ports[port].store_pair {
                self.port_used |= 1 << pair;
                sw[sw_id].port_issued[pair] += 1;
                self.counters.issue_slots_used += 1;
            }
        }
        TryIssue::Issued
    }

    fn dispatch(
        &mut self,
        arch: &ArchDescriptor,
        _now: u64,
        mode: StepMode,
        sw: &mut [ThreadCounters],
    ) -> u32 {
        let width = arch.dispatch_width;
        let mut dispatched = 0usize;
        let mut thread_had = [false; MAX_WAYS];
        let mut thread_dispatched = [0u32; MAX_WAYS];
        let mut thread_blocked_congested = [false; MAX_WAYS];

        loop {
            let mut progress = false;
            for k in 0..self.ways {
                if dispatched >= width {
                    break;
                }
                let t = (self.disp_rr + k) % self.ways;
                let dispatchable = match self.ctxs[t].state {
                    CtxState::Running => true,
                    CtxState::Sleeping(_) => mode == StepMode::Drain,
                    CtxState::Finished => false,
                };
                if !dispatchable || self.ctxs[t].ibuf.is_empty() {
                    continue;
                }
                thread_had[t] = true;
                if self.ctxs[t].rob_full() {
                    // A full in-flight window is normally a latency effect
                    // SMT can hide (not a resource shortage) — except when
                    // the machine is memory-bound to the point that the
                    // miss queue is rejecting accesses: then the window is
                    // full *because* the memory system cannot absorb more,
                    // which is exactly the saturation DispHeld must report.
                    if self.queue_lmq_reject != 0 {
                        thread_blocked_congested[t] = true;
                    }
                    continue;
                }
                let class = self.ctxs[t].ibuf.front().expect("nonempty").class;
                // Route to the least-occupied eligible queue.
                let mut best: Option<usize> = None;
                let mut blocked_by_congested_queue = false;
                for &qi in &self.class_queues[class.index()] {
                    if self.bank.full(qi) || self.bank.thread_share_full(qi, t) {
                        // This queue turned the thread away. Only queues
                        // whose execution resources are genuinely saturated
                        // — every port this class could use issued this
                        // cycle, or a load was rejected for want of a miss
                        // slot — count toward the DispHeld factor; a queue
                        // full of instructions *waiting on operands* is a
                        // latency problem SMT can hide, not a resource
                        // shortage.
                        if self.queue_congested_for(qi, class) {
                            blocked_by_congested_queue = true;
                        }
                        continue;
                    }
                    best = match best {
                        Some(b) if self.bank.live_len(b) <= self.bank.live_len(qi) => Some(b),
                        _ => Some(qi),
                    };
                }
                match best {
                    Some(qi) => {
                        let ctx = &mut self.ctxs[t];
                        let instr = ctx.ibuf.pop_front().expect("nonempty");
                        let seq = ctx.dispatch_seq;
                        ctx.dispatch_seq += 1;
                        ctx.comp[(seq as usize) % RING] = PENDING;
                        ctx.unissued_insert(seq);
                        self.bank.push_back(qi, t as u8, seq, instr);
                        sw[ctx.sw_id].dispatched += 1;
                        dispatched += 1;
                        thread_dispatched[t] += 1;
                        progress = true;
                    }
                    None => {
                        if blocked_by_congested_queue {
                            thread_blocked_congested[t] = true;
                        }
                    }
                }
            }
            if !progress || dispatched >= width {
                break;
            }
        }
        self.disp_rr = (self.disp_rr + 1) % self.ways;
        self.counters.dispatch_slots_used += dispatched as u64;
        // Dispatch-held accounting (the `PM_DISP_CLB_HELD_RES` analogue):
        // a thread-cycle counts as held when the thread *ended the cycle*
        // unable to dispatch because a queue's execution resources were
        // saturated (ports fully busy, or memory accesses rejected on a
        // full miss queue). Blockage from the in-flight (ROB) window, or by
        // queues merely full of operand-waiting instructions, does not
        // count — those are latency effects additional hardware threads can
        // hide, not resource exhaustion. A cycle that ended purely because
        // the dispatch width ran out is not held either.
        let width_exhausted = dispatched >= width;
        let mut held = false;
        for t in 0..self.ways {
            if thread_had[t]
                && thread_blocked_congested[t]
                && (thread_dispatched[t] == 0 || !width_exhausted)
            {
                sw[self.ctxs[t].sw_id].disp_held_cycles += 1;
                held = true;
            }
        }
        if held {
            self.counters.disp_held_cycles += 1;
        }
        dispatched as u32
    }

    fn fetch<W: Workload + ?Sized>(
        &mut self,
        arch: &ArchDescriptor,
        now: u64,
        workload: &mut W,
        mem: &mut MemorySystem,
        sw: &mut [ThreadCounters],
    ) -> u32 {
        let mut activity = 0;
        // Pick the next eligible thread, round-robin.
        let mut chosen = None;
        for k in 0..self.ways {
            let t = (self.fetch_rr + k) % self.ways;
            let ctx = &self.ctxs[t];
            if ctx.state == CtxState::Running
                && !ctx.fetch_done
                && now >= ctx.fetch_blocked_until
                && ctx.ibuf.len() < ctx.ibuf_cap
            {
                chosen = Some(t);
                self.fetch_rr = (t + 1) % self.ways;
                break;
            }
        }
        let Some(t) = chosen else { return activity };
        for _ in 0..arch.fetch_width {
            let ctx = &mut self.ctxs[t];
            if ctx.ibuf.len() >= ctx.ibuf_cap {
                break;
            }
            activity += 1; // every workload.fetch advances generator state
            match workload.fetch(ctx.sw_id, now) {
                Fetched::Instr(i) => {
                    // Instruction-cache check (once per 64-byte code line):
                    // a miss stalls this thread's fetch until the line
                    // returns; the instruction itself is kept — it arrives
                    // with the line.
                    let line = i.pc >> 6;
                    if i.pc != 0 && line != ctx.last_fetch_line {
                        ctx.last_fetch_line = line;
                        let sw_id = ctx.sw_id;
                        let out = mem.fetch_access(self.id, i.pc, now);
                        let ctx = &mut self.ctxs[t];
                        if out.l1_miss {
                            sw[sw_id].l1i_misses += 1;
                            ctx.fetch_blocked_until =
                                ctx.fetch_blocked_until.max(now + out.latency);
                        }
                    }
                    let ctx = &mut self.ctxs[t];
                    ctx.ibuf.push_back(i);
                    sw[ctx.sw_id].fetched += 1;
                    if now < ctx.fetch_blocked_until {
                        break;
                    }
                }
                Fetched::Sleep { until } => {
                    ctx.state = CtxState::Sleeping(until.max(now + 1));
                    break;
                }
                Fetched::Finished => {
                    ctx.fetch_done = true;
                    break;
                }
            }
        }
        activity
    }

    fn account(&mut self, _now: u64, sw: &mut [ThreadCounters]) {
        self.counters.cycles += 1;
        let mut active = false;
        for ctx in &self.ctxs {
            match ctx.state {
                CtxState::Running => {
                    active = true;
                    sw[ctx.sw_id].cpu_cycles += 1;
                }
                CtxState::Sleeping(_) => {
                    sw[ctx.sw_id].sleep_cycles += 1;
                }
                CtxState::Finished => {}
            }
        }
        if active {
            self.counters.active_cycles += 1;
        }
    }

    /// If stepping this core under [`StepMode::Normal`] is provably a
    /// no-op for every cycle in `now..e`, return the first cycle `e` at
    /// which something *could* happen (a sleep expiring, a parked
    /// instruction's data returning, a mispredict bubble ending, or a
    /// queued instruction's producer completing within the issue scan
    /// window). Return `None` when the core could act *this* cycle.
    ///
    /// Intended to be called only after a step that reported zero
    /// activity, but sound on its own: every condition that could make
    /// a cycle do work is checked directly. `Some(u64::MAX)` means the
    /// core can never act again without external input (all threads
    /// finished, or a true dependency deadlock the naive loop would also
    /// spin on forever); the caller bounds the jump.
    pub fn quiet_until(&self, arch: &ArchDescriptor, now: u64) -> Option<u64> {
        let mut next = u64::MAX;
        for (t, ctx) in self.ctxs.iter().enumerate() {
            match ctx.state {
                CtxState::Sleeping(until) => {
                    if until <= now {
                        return None; // would wake this cycle
                    }
                    next = next.min(until);
                }
                CtxState::Running => {
                    if ctx.fetch_done && ctx.drained() {
                        return None; // would retire to Finished
                    }
                    if !ctx.fetch_done && ctx.ibuf.len() < ctx.ibuf_cap {
                        if now >= ctx.fetch_blocked_until {
                            return None; // fetch-eligible
                        }
                        next = next.min(ctx.fetch_blocked_until);
                    }
                    // Could the front of the fetch buffer dispatch?
                    if let Some(front) = ctx.ibuf.front() {
                        if !ctx.rob_full() {
                            for &qi in &self.class_queues[front.class.index()] {
                                if !self.bank.full(qi) && !self.bank.thread_share_full(qi, t) {
                                    return None; // would dispatch
                                }
                            }
                        }
                    }
                }
                CtxState::Finished => {}
            }
            for &(wake, _, _) in &ctx.parked {
                if wake <= now {
                    return None; // would unpark this cycle
                }
                next = next.min(wake);
            }
        }
        // Queued instructions: only the first `issue_scan_depth` entries of
        // each queue are visible to the issue stage, and with no issues or
        // parks happening the visible prefix cannot change, so deeper
        // entries need no events. A visible entry whose producer already
        // completed would issue (or hit the LMQ-reject path) right now; one
        // completing in the future issues — or parks — at completion.
        // Producers still `PENDING` need no event: their own issue is
        // activity that re-arms the analysis.
        match &self.bank {
            QueueBank::Legacy(qs) => {
                for q in qs {
                    // A queue the issue stage has proven quiet needs no
                    // per-entry walk: its earliest possible event is the
                    // memoized mark (an earlier wake-up than strictly
                    // necessary is always safe).
                    if q.quiet_until > now {
                        if q.quiet_until != u64::MAX {
                            next = next.min(q.quiet_until);
                        }
                        continue;
                    }
                    let mut seen = 0usize;
                    for e in q.entries.iter() {
                        if e.hw == TOMBSTONE {
                            continue;
                        }
                        if seen >= arch.issue_scan_depth {
                            break;
                        }
                        seen += 1;
                        if e.ready_at > now {
                            next = next.min(e.ready_at);
                            continue;
                        }
                        let ctx = &self.ctxs[e.hw as usize];
                        if ctx.dep_ready(e.seq, e.instr.dep_dist, now) {
                            return None; // would issue (or LMQ-reject) now
                        }
                        if e.instr.dep_dist > 0 && e.seq >= u64::from(e.instr.dep_dist) {
                            let c =
                                ctx.comp[((e.seq - u64::from(e.instr.dep_dist)) as usize) % RING];
                            if c != PENDING {
                                next = next.min(c);
                            }
                        }
                    }
                }
            }
            QueueBank::Soa(qs) => {
                for q in qs {
                    if q.quiet_until > now {
                        if q.quiet_until != u64::MAX {
                            next = next.min(q.quiet_until);
                        }
                        continue;
                    }
                    let mut seen = 0usize;
                    'scan: for w in 0..q.occ.len() {
                        let mut bits = q.occ[w];
                        while bits != 0 {
                            let b = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            if seen >= arch.issue_scan_depth {
                                break 'scan;
                            }
                            seen += 1;
                            let s = (w << 6) + b;
                            let ra = q.ready_at[s];
                            if ra > now {
                                next = next.min(ra);
                                continue;
                            }
                            let ctx = &self.ctxs[q.hw[s] as usize];
                            let seq = q.seq[s];
                            let dep = q.instr[s].dep_dist;
                            if ctx.dep_ready(seq, dep, now) {
                                return None; // would issue (or reject) now
                            }
                            if dep > 0 && seq >= u64::from(dep) {
                                let c = ctx.comp[((seq - u64::from(dep)) as usize) % RING];
                                if c != PENDING {
                                    next = next.min(c);
                                }
                            }
                        }
                    }
                }
            }
        }
        debug_assert!(next > now);
        Some(next)
    }

    /// Charge `k` provably-idle cycles in one step, exactly as `k` naive
    /// [`Core::step`] calls would have: wall cycles, per-thread CPU/sleep
    /// time, core active time, and the dispatch round-robin pointer (which
    /// the naive loop advances every cycle regardless of progress). All
    /// other state is untouched because an idle cycle touches nothing
    /// else. The driver batches these charges (one call per idle stretch,
    /// not per cycle — see `Simulation`'s idle-debt ledger).
    pub fn charge_idle(&mut self, k: u64, sw: &mut [ThreadCounters]) {
        let mut active = false;
        for ctx in &self.ctxs {
            match ctx.state {
                CtxState::Running => {
                    active = true;
                    sw[ctx.sw_id].cpu_cycles += k;
                }
                CtxState::Sleeping(_) => {
                    sw[ctx.sw_id].sleep_cycles += k;
                }
                CtxState::Finished => {}
            }
        }
        self.counters.charge_idle(k, active);
        self.disp_rr = (self.disp_rr + (k % self.ways as u64) as usize) % self.ways;
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchDescriptor;
    use crate::cache::{CacheConfig, MemConfig};
    use crate::workload::ScriptedWorkload;

    fn mem_system(cores: usize) -> MemorySystem {
        MemorySystem::new(
            1,
            cores,
            CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 2,
            },
            CacheConfig {
                size_bytes: 256 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 12,
            },
            CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                assoc: 16,
                line_bytes: 64,
                latency: 30,
            },
            MemConfig {
                latency: 180,
                bytes_per_cycle: 16.0,
                remote_extra_latency: 120,
            },
        )
    }

    fn run_core<W: Workload>(
        arch: &ArchDescriptor,
        core: &mut Core,
        workload: &mut W,
        sw: &mut [ThreadCounters],
        max_cycles: u64,
    ) -> u64 {
        let mut mem = mem_system(1);
        for now in 0..max_cycles {
            core.step(arch, now, StepMode::Normal, workload, &mut mem, sw);
            if workload.finished() && core.drained() {
                return now + 1;
            }
        }
        max_cycles
    }

    #[test]
    fn single_thread_executes_script_to_completion() {
        let arch = ArchDescriptor::power7();
        let script: Vec<Instr> = (0..100)
            .map(|_| Instr::simple(InstrClass::FixedPoint))
            .collect();
        let mut w = ScriptedWorkload::new("fx", script);
        w.set_thread_count(1);
        let mut core = Core::new(&arch, 0, &[0]);
        let mut sw = vec![ThreadCounters::new(arch.num_ports()); 1];
        let cycles = run_core(&arch, &mut core, &mut w, &mut sw, 10_000);
        assert!(cycles < 10_000, "did not finish");
        assert_eq!(sw[0].issued, 100);
        assert_eq!(sw[0].work_units, 100);
        assert!(core.finished());
    }

    #[test]
    fn independent_fx_throughput_bounded_by_two_ports() {
        // 1000 independent fixed-point instructions through 2 FX ports:
        // at best 2 per cycle, so >= ~500 cycles.
        let arch = ArchDescriptor::power7();
        let script: Vec<Instr> = (0..1000)
            .map(|_| Instr::simple(InstrClass::FixedPoint))
            .collect();
        let mut w = ScriptedWorkload::new("fx", script);
        w.set_thread_count(1);
        let mut core = Core::new(&arch, 0, &[0]);
        let mut sw = vec![ThreadCounters::new(arch.num_ports()); 1];
        let cycles = run_core(&arch, &mut core, &mut w, &mut sw, 20_000);
        assert!(cycles >= 500, "exceeded FX port bandwidth: {cycles}");
        assert!(cycles < 800, "far below FX port bandwidth: {cycles}");
    }

    #[test]
    fn dependency_chain_serializes() {
        // A chain of dependent 6-cycle VSU ops: ~6 cycles each.
        let arch = ArchDescriptor::power7();
        let script: Vec<Instr> = (0..200)
            .map(|_| Instr::simple(InstrClass::VectorScalar).with_dep(1))
            .collect();
        let mut w = ScriptedWorkload::new("chain", script);
        w.set_thread_count(1);
        let mut core = Core::new(&arch, 0, &[0]);
        let mut sw = vec![ThreadCounters::new(arch.num_ports()); 1];
        let cycles = run_core(&arch, &mut core, &mut w, &mut sw, 50_000);
        // The run ends when the last instruction *issues*; 199 dependency
        // edges of 6 cycles each bound the issue time of the last one.
        assert!(cycles >= 199 * 6, "chain not serialized: {cycles}");
    }

    #[test]
    fn smt2_fills_dependency_gaps() {
        // The same dependent-VSU chain, one per hardware thread: two chains
        // overlap, so 2 threads' worth of work takes about as long as one.
        let arch = ArchDescriptor::power7();
        let script: Vec<Instr> = (0..200)
            .map(|_| Instr::simple(InstrClass::VectorScalar).with_dep(1))
            .collect();

        let mut w1 = ScriptedWorkload::new("chain", script.clone());
        w1.set_thread_count(1);
        let mut core1 = Core::new(&arch, 0, &[0]);
        let mut sw1 = vec![ThreadCounters::new(arch.num_ports()); 1];
        let t1 = run_core(&arch, &mut core1, &mut w1, &mut sw1, 100_000);

        let mut w2 = ScriptedWorkload::new("chain", script);
        w2.set_thread_count(2);
        let mut core2 = Core::new(&arch, 0, &[0, 1]);
        let mut sw2 = vec![ThreadCounters::new(arch.num_ports()); 2];
        let t2 = run_core(&arch, &mut core2, &mut w2, &mut sw2, 100_000);

        // Twice the work in less than 1.3x the time.
        assert!(
            (t2 as f64) < (t1 as f64) * 1.3,
            "SMT2 did not hide dependency latency: t1={t1} t2={t2}"
        );
    }

    #[test]
    fn mispredicted_branches_stall_fetch() {
        let arch = ArchDescriptor::power7();
        let mk = |mis: bool| -> Vec<Instr> {
            (0..300)
                .map(|k| {
                    if k % 10 == 9 {
                        Instr::branch(mis)
                    } else {
                        Instr::simple(InstrClass::FixedPoint)
                    }
                })
                .collect()
        };
        let run = |script: Vec<Instr>| {
            let mut w = ScriptedWorkload::new("br", script);
            w.set_thread_count(1);
            let mut core = Core::new(&arch, 0, &[0]);
            let mut sw = vec![ThreadCounters::new(arch.num_ports()); 1];
            let c = run_core(&arch, &mut core, &mut w, &mut sw, 100_000);
            (c, sw[0].branch_mispredicts)
        };
        let (good, m0) = run(mk(false));
        let (bad, m1) = run(mk(true));
        assert_eq!(m0, 0);
        assert_eq!(m1, 30);
        assert!(
            bad as f64 > good as f64 * 1.5,
            "mispredicts too cheap: good={good} bad={bad}"
        );
    }

    #[test]
    fn sleeping_thread_accrues_sleep_not_cpu() {
        let arch = ArchDescriptor::power7();

        #[derive(Debug)]
        struct Sleepy {
            sent: bool,
        }
        impl Workload for Sleepy {
            fn name(&self) -> &str {
                "sleepy"
            }
            fn fetch(&mut self, _t: usize, now: u64) -> Fetched {
                if now < 100 {
                    Fetched::Sleep { until: 100 }
                } else if !self.sent {
                    self.sent = true;
                    Fetched::Instr(Instr::simple(InstrClass::FixedPoint))
                } else {
                    Fetched::Finished
                }
            }
            fn set_thread_count(&mut self, _n: usize) {}
            fn thread_count(&self) -> usize {
                1
            }
            fn finished(&self) -> bool {
                self.sent
            }
            fn work_done(&self) -> u64 {
                u64::from(self.sent)
            }
            fn total_work(&self) -> u64 {
                1
            }
        }

        let mut w = Sleepy { sent: false };
        let mut core = Core::new(&arch, 0, &[0]);
        let mut sw = vec![ThreadCounters::new(arch.num_ports()); 1];
        let mut mem = mem_system(1);
        for now in 0..300 {
            core.step(&arch, now, StepMode::Normal, &mut w, &mut mem, &mut sw);
        }
        assert_eq!(sw[0].issued, 1);
        assert!(sw[0].sleep_cycles >= 90, "sleep={}", sw[0].sleep_cycles);
        assert!(
            sw[0].cpu_cycles < 250,
            "cpu cycles should exclude most of the sleep: {}",
            sw[0].cpu_cycles
        );
    }

    #[test]
    fn homogeneous_saturation_holds_dispatch() {
        // Four threads of pure independent VSU work: demand 6/cycle versus
        // drain 2/cycle. Queues fill and the core-level dispatch-held
        // counter must engage.
        let arch = ArchDescriptor::power7();
        let script: Vec<Instr> = (0..500)
            .map(|_| Instr::simple(InstrClass::VectorScalar))
            .collect();
        let mut w = ScriptedWorkload::new("vsu", script);
        w.set_thread_count(4);
        let mut core = Core::new(&arch, 0, &[0, 1, 2, 3]);
        let mut sw = vec![ThreadCounters::new(arch.num_ports()); 4];
        run_core(&arch, &mut core, &mut w, &mut sw, 100_000);
        let held = core.counters.disp_held_cycles as f64 / core.counters.active_cycles as f64;
        assert!(held > 0.3, "expected heavy dispatch hold, got {held}");
    }

    #[test]
    fn diverse_mix_dispatch_rarely_held() {
        // An ideal-mix workload with no dependencies should keep queues
        // draining and the held fraction low.
        let arch = ArchDescriptor::power7();
        let mut script = Vec::new();
        // Long enough that the cold-start miss burst (which legitimately
        // counts as memory congestion) amortizes away.
        for k in 0..20_000u64 {
            let c = match k % 7 {
                0 => InstrClass::Load,
                1 => InstrClass::Store,
                2 => InstrClass::Branch,
                3 | 4 => InstrClass::FixedPoint,
                _ => InstrClass::VectorScalar,
            };
            let mut i = Instr::simple(c);
            // Small private working set: always L1-resident.
            i.addr = (k % 32) * 64;
            script.push(i);
        }
        let mut w = ScriptedWorkload::new("mix", script);
        w.set_thread_count(1);
        let mut core = Core::new(&arch, 0, &[0]);
        let mut sw = vec![ThreadCounters::new(arch.num_ports()); 1];
        run_core(&arch, &mut core, &mut w, &mut sw, 100_000);
        let held = core.counters.disp_held_cycles as f64 / core.counters.active_cycles as f64;
        println!(
            "HELD={held} q0={} q1={} q2={} q3={}",
            core.queue_len(0),
            core.queue_len(1),
            core.queue_len(2),
            core.queue_len(3)
        );
        assert!(held < 0.1, "ideal mix should not hold dispatch: {held}");
    }

    #[test]
    fn port_counters_track_issue_ports() {
        let arch = ArchDescriptor::power7();
        let script: Vec<Instr> = (0..50).map(|_| Instr::simple(InstrClass::Branch)).collect();
        let mut w = ScriptedWorkload::new("br", script);
        w.set_thread_count(1);
        let mut core = Core::new(&arch, 0, &[0]);
        let mut sw = vec![ThreadCounters::new(arch.num_ports()); 1];
        run_core(&arch, &mut core, &mut w, &mut sw, 100_000);
        // Port 1 is the BR port on the power7-like descriptor.
        assert_eq!(sw[0].port_issued[1], 50);
        assert_eq!(sw[0].branches, 50);
    }

    #[test]
    fn nehalem_store_consumes_paired_port() {
        let arch = ArchDescriptor::nehalem();
        let script: Vec<Instr> = (0..40).map(|k| Instr::store(k * 64)).collect();
        let mut w = ScriptedWorkload::new("st", script);
        w.set_thread_count(1);
        let mut core = Core::new(&arch, 0, &[0]);
        let mut sw = vec![ThreadCounters::new(arch.num_ports()); 1];
        run_core(&arch, &mut core, &mut w, &mut sw, 100_000);
        assert_eq!(sw[0].port_issued[3], 40, "store-address port");
        assert_eq!(sw[0].port_issued[4], 40, "store-data port");
    }

    #[test]
    fn drain_mode_empties_pipeline_without_fetch() {
        let arch = ArchDescriptor::power7();
        let script: Vec<Instr> = (0..64)
            .map(|_| Instr::simple(InstrClass::FixedPoint))
            .collect();
        let mut w = ScriptedWorkload::new("fx", script);
        w.set_thread_count(1);
        let mut core = Core::new(&arch, 0, &[0]);
        let mut sw = vec![ThreadCounters::new(arch.num_ports()); 1];
        let mut mem = mem_system(1);
        // Fill the pipeline a bit.
        for now in 0..5 {
            core.step(&arch, now, StepMode::Normal, &mut w, &mut mem, &mut sw);
        }
        let fetched_before = sw[0].fetched;
        assert!(fetched_before > 0);
        // Drain: no new fetch, everything in flight completes.
        for now in 5..500 {
            core.step(&arch, now, StepMode::Drain, &mut w, &mut mem, &mut sw);
            if core.drained() {
                break;
            }
        }
        assert!(core.drained());
        assert_eq!(sw[0].fetched, fetched_before, "drain must not fetch");
        assert_eq!(sw[0].issued, fetched_before, "all fetched must issue");
    }

    #[test]
    fn lmq_rejections_engage_under_miss_storms() {
        // Random-ish strided loads over a huge range: every load misses to
        // memory, quickly exhausting the 16-entry LMQ.
        let arch = ArchDescriptor::power7();
        let script: Vec<Instr> = (0..400u64).map(|k| Instr::load(k * 1024 * 1024)).collect();
        let mut w = ScriptedWorkload::new("miss", script);
        w.set_thread_count(1);
        let mut core = Core::new(&arch, 0, &[0]);
        let mut sw = vec![ThreadCounters::new(arch.num_ports()); 1];
        run_core(&arch, &mut core, &mut w, &mut sw, 500_000);
        assert!(sw[0].l1d_misses >= 400);
        assert!(
            core.counters.lmq_rejections > 0,
            "expected LMQ pressure under a miss storm"
        );
    }

    #[test]
    fn legacy_engine_still_executes() {
        // The reference engine stays alive behind `with_engine` for the
        // differential proofs; make sure it still runs end to end.
        let arch = ArchDescriptor::power7();
        let script: Vec<Instr> = (0..100)
            .map(|_| Instr::simple(InstrClass::FixedPoint))
            .collect();
        let mut w = ScriptedWorkload::new("fx", script);
        w.set_thread_count(1);
        let mut core =
            Core::with_engine(&arch, 0, &[0], IssueEngine::Legacy, ScanKernel::ScalarU64);
        assert_eq!(core.engine(), IssueEngine::Legacy);
        let mut sw = vec![ThreadCounters::new(arch.num_ports()); 1];
        let cycles = run_core(&arch, &mut core, &mut w, &mut sw, 10_000);
        assert!(cycles < 10_000, "did not finish");
        assert_eq!(sw[0].issued, 100);
        assert!(core.finished());
    }

    #[test]
    fn engines_agree_cycle_by_cycle_on_a_mixed_script() {
        // Step a legacy core and a SoA core in lockstep over a script that
        // exercises dependencies, branches, loads (hits and misses), and
        // stores; every counter must match every cycle. The machine-level
        // differential proptests cover whole workloads — this is the tight
        // inner loop of that proof, with invariants checked per cycle.
        let arch = ArchDescriptor::power7();
        let mut script = Vec::new();
        for k in 0..3000u64 {
            let mut i = match k % 11 {
                0 => Instr::load(k * 64 * 1024), // miss-prone
                1 => Instr::load((k % 16) * 64), // L1-resident
                2 => Instr::store((k % 32) * 64),
                3 => Instr::branch(k % 30 == 3),
                4 | 5 => Instr::simple(InstrClass::VectorScalar).with_dep(2),
                _ => Instr::simple(InstrClass::FixedPoint),
            };
            if k % 7 == 0 {
                i = i.with_dep(1);
            }
            script.push(i);
        }
        let mk = |engine: IssueEngine| {
            let mut w = ScriptedWorkload::new("mix", script.clone());
            w.set_thread_count(2);
            let core = Core::with_engine(&arch, 0, &[0, 1], engine, ScanKernel::ScalarU64);
            let sw = vec![ThreadCounters::new(arch.num_ports()); 2];
            (w, core, sw)
        };
        let (mut wa, mut ca, mut sa) = mk(IssueEngine::Legacy);
        let (mut wb, mut cb, mut sb) = mk(IssueEngine::Soa);
        let mut ma = mem_system(1);
        let mut mb = mem_system(1);
        for now in 0..200_000u64 {
            let aa = ca.step(&arch, now, StepMode::Normal, &mut wa, &mut ma, &mut sa);
            let ab = cb.step(&arch, now, StepMode::Normal, &mut wb, &mut mb, &mut sb);
            assert_eq!(aa, ab, "activity diverged at cycle {now}");
            assert_eq!(sa, sb, "thread counters diverged at cycle {now}");
            ca.check_invariants();
            cb.check_invariants();
            for qi in 0..4 {
                assert_eq!(
                    ca.queue_len(qi),
                    cb.queue_len(qi),
                    "queue {qi} occupancy diverged at cycle {now}"
                );
            }
            if wa.finished() && ca.drained() {
                assert!(wb.finished() && cb.drained());
                break;
            }
        }
        assert!(ca.finished() && cb.finished(), "script did not complete");
        assert_eq!(sa[0].issued + sa[1].issued, 6000);
    }

    #[test]
    fn unissued_bitmap_tracks_oldest_exactly() {
        let mut ctx = HwContext::new(0, 8, 128);
        for seq in 0..10u64 {
            ctx.dispatch_seq = seq + 1;
            ctx.unissued_insert(seq);
        }
        assert_eq!(ctx.unissued_oldest, 0);
        // Remove from the middle: oldest unchanged.
        ctx.unissued_remove(4);
        assert_eq!(ctx.unissued_oldest, 0);
        // Remove the oldest: skips over the hole at 4.
        ctx.unissued_remove(0);
        assert_eq!(ctx.unissued_oldest, 1);
        for seq in [1u64, 2, 3, 5, 6] {
            ctx.unissued_remove(seq);
        }
        assert_eq!(ctx.unissued_oldest, 7);
        assert_eq!(ctx.unissued_count, 3);
        // Wrap the ring: sequences land in higher words and back around.
        let mut ctx = HwContext::new(0, 8, 128);
        for seq in 200..280u64 {
            ctx.dispatch_seq = seq + 1;
            ctx.unissued_insert(seq);
        }
        ctx.unissued_remove(200);
        assert_eq!(ctx.unissued_oldest, 201);
        for seq in 201..262u64 {
            ctx.unissued_remove(seq);
        }
        assert_eq!(ctx.unissued_oldest, 262, "oldest must cross the wrap");
        assert!(!ctx.rob_full());
    }
}
