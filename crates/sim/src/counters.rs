//! Hardware performance counters.
//!
//! This is the simulator's PMU: everything the SMT-selection metric (and
//! the naive baseline metrics of Fig. 2) reads. Counters come in two banks:
//! per-software-thread [`ThreadCounters`] and per-core [`CoreCounters`].
//! A [`WindowMeasurement`] is a *delta* of both banks over a sampling
//! window, plus the context (SMT level, wall cycles) needed to evaluate
//! the metric — the analogue of one `perf`-style sampling interval.
//!
//! Counter updates are part of the simulator's bit-identity contract:
//! both issue engines (the legacy entry walk and the word-parallel SoA
//! bitset engine, DESIGN.md §3.13) must produce identical values in both
//! banks at *every* observation point, not just at completion — enforced
//! across engines, scan kernels, and stepping modes by the differential
//! proptests in `crates/experiments/tests/differential.rs`.

use crate::arch::SmtLevel;
use crate::isa::{InstrClass, NUM_CLASSES};
use serde::{Deserialize, Serialize};

/// Event counts attributed to one software thread.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadCounters {
    /// Cycles the thread was bound to a hardware context and runnable
    /// (includes spin-waiting; excludes sleep).
    pub cpu_cycles: u64,
    /// Cycles the thread was blocked (sleep, blocking locks, barriers).
    pub sleep_cycles: u64,
    /// Instructions fetched into the thread's buffer.
    pub fetched: u64,
    /// Instructions dispatched into issue queues.
    pub dispatched: u64,
    /// Instructions issued to ports (== completed, for our purposes).
    pub issued: u64,
    /// Useful work units among issued instructions.
    pub work_units: u64,
    /// Issued instructions carrying zero work (spin-loop overhead).
    pub spin_instrs: u64,
    /// Cycles this thread had dispatchable instructions, dispatched none,
    /// and was turned away by an issue queue whose execution resources were
    /// saturated (ports all busy, or loads rejected on a full load-miss
    /// queue). This is the per-thread `PM_DISP_CLB_HELD_RES` analogue the
    /// metric's DispHeld factor aggregates.
    pub disp_held_cycles: u64,
    /// Branch instructions issued.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// Loads+stores that missed L1D.
    pub l1d_misses: u64,
    /// Instruction fetches that missed the L1I (front-end stalls).
    pub l1i_misses: u64,
    /// Misses that also missed L2.
    pub l2_misses: u64,
    /// Misses that also missed L3 (went to DRAM).
    pub l3_misses: u64,
    /// Memory references issued (loads + stores).
    pub mem_refs: u64,
    /// Accesses serviced by a remote chip's memory controller.
    pub remote_accesses: u64,
    /// Issued instructions by class.
    pub class_issued: [u64; NUM_CLASSES],
    /// Issued instructions by issue port (length = arch port count).
    pub port_issued: Vec<u64>,
}

impl ThreadCounters {
    /// Fresh zeroed bank for an architecture with `nports` issue ports.
    pub fn new(nports: usize) -> ThreadCounters {
        ThreadCounters {
            port_issued: vec![0; nports],
            ..Default::default()
        }
    }

    /// Elementwise `self - earlier`; panics if `earlier` is not a prefix
    /// state of `self` (counters are monotonic).
    pub fn delta(&self, earlier: &ThreadCounters) -> ThreadCounters {
        assert_eq!(self.port_issued.len(), earlier.port_issued.len());
        let mut d = self.clone();
        d.cpu_cycles -= earlier.cpu_cycles;
        d.sleep_cycles -= earlier.sleep_cycles;
        d.fetched -= earlier.fetched;
        d.dispatched -= earlier.dispatched;
        d.issued -= earlier.issued;
        d.work_units -= earlier.work_units;
        d.spin_instrs -= earlier.spin_instrs;
        d.disp_held_cycles -= earlier.disp_held_cycles;
        d.branches -= earlier.branches;
        d.branch_mispredicts -= earlier.branch_mispredicts;
        d.l1d_misses -= earlier.l1d_misses;
        d.l1i_misses -= earlier.l1i_misses;
        d.l2_misses -= earlier.l2_misses;
        d.l3_misses -= earlier.l3_misses;
        d.mem_refs -= earlier.mem_refs;
        d.remote_accesses -= earlier.remote_accesses;
        for i in 0..NUM_CLASSES {
            d.class_issued[i] -= earlier.class_issued[i];
        }
        for i in 0..d.port_issued.len() {
            d.port_issued[i] -= earlier.port_issued[i];
        }
        d
    }

    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &ThreadCounters) {
        assert_eq!(self.port_issued.len(), other.port_issued.len());
        self.cpu_cycles += other.cpu_cycles;
        self.sleep_cycles += other.sleep_cycles;
        self.fetched += other.fetched;
        self.dispatched += other.dispatched;
        self.issued += other.issued;
        self.work_units += other.work_units;
        self.spin_instrs += other.spin_instrs;
        self.disp_held_cycles += other.disp_held_cycles;
        self.branches += other.branches;
        self.branch_mispredicts += other.branch_mispredicts;
        self.l1d_misses += other.l1d_misses;
        self.l1i_misses += other.l1i_misses;
        self.l2_misses += other.l2_misses;
        self.l3_misses += other.l3_misses;
        self.mem_refs += other.mem_refs;
        self.remote_accesses += other.remote_accesses;
        for i in 0..NUM_CLASSES {
            self.class_issued[i] += other.class_issued[i];
        }
        for i in 0..self.port_issued.len() {
            self.port_issued[i] += other.port_issued[i];
        }
    }

    /// Record one issued instruction.
    #[inline]
    pub fn record_issue(&mut self, class: InstrClass, port: usize, work: u8) {
        self.issued += 1;
        self.work_units += u64::from(work);
        if work == 0 {
            self.spin_instrs += 1;
        }
        self.class_issued[class.index()] += 1;
        self.port_issued[port] += 1;
    }
}

/// Event counts attributed to one core (the dispatcher's view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreCounters {
    /// Cycles the core was stepped.
    pub cycles: u64,
    /// Cycles with at least one runnable hardware thread.
    pub active_cycles: u64,
    /// Cycles on which at least one hardware thread was dispatch-held by a
    /// congested queue (see [`ThreadCounters::disp_held_cycles`]); a
    /// core-level diagnostic view of the same event.
    pub disp_held_cycles: u64,
    /// Dispatch slots actually used (for utilization diagnostics).
    pub dispatch_slots_used: u64,
    /// Issue slots (port-cycles) actually used.
    pub issue_slots_used: u64,
    /// Loads whose issue was cancelled because the load-miss queue was full.
    pub lmq_rejections: u64,
}

impl CoreCounters {
    /// Charge `k` cycles in which the core provably did nothing, exactly
    /// as `k` single-cycle accounting passes would: wall cycles always,
    /// active cycles when a runnable thread existed. The event counters
    /// (dispatch, issue, held, rejections) stay put — an idle cycle has
    /// no events by definition. Used by the fast-forward stepper.
    pub fn charge_idle(&mut self, k: u64, any_running: bool) {
        self.cycles += k;
        if any_running {
            self.active_cycles += k;
        }
    }

    /// Elementwise `self - earlier`.
    pub fn delta(&self, earlier: &CoreCounters) -> CoreCounters {
        CoreCounters {
            cycles: self.cycles - earlier.cycles,
            active_cycles: self.active_cycles - earlier.active_cycles,
            disp_held_cycles: self.disp_held_cycles - earlier.disp_held_cycles,
            dispatch_slots_used: self.dispatch_slots_used - earlier.dispatch_slots_used,
            issue_slots_used: self.issue_slots_used - earlier.issue_slots_used,
            lmq_rejections: self.lmq_rejections - earlier.lmq_rejections,
        }
    }

    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &CoreCounters) {
        self.cycles += other.cycles;
        self.active_cycles += other.active_cycles;
        self.disp_held_cycles += other.disp_held_cycles;
        self.dispatch_slots_used += other.dispatch_slots_used;
        self.issue_slots_used += other.issue_slots_used;
        self.lmq_rejections += other.lmq_rejections;
    }
}

/// A complete counter reading over one sampling window: the input to the
/// SMT-selection metric and to every baseline metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowMeasurement {
    /// Wall-clock cycles covered by the window (`TotalTime` in Eq. 1).
    pub wall_cycles: u64,
    /// SMT level the machine ran at during the window.
    pub smt: SmtLevel,
    /// Per-software-thread counter deltas.
    pub per_thread: Vec<ThreadCounters>,
    /// Core counter deltas summed over all cores.
    pub cores: CoreCounters,
}

impl WindowMeasurement {
    /// Total issued instructions across threads.
    pub fn total_issued(&self) -> u64 {
        self.per_thread.iter().map(|t| t.issued).sum()
    }

    /// Total useful work units across threads.
    pub fn total_work(&self) -> u64 {
        self.per_thread.iter().map(|t| t.work_units).sum()
    }

    /// Aggregate counters over all threads.
    pub fn aggregate(&self) -> ThreadCounters {
        let nports = self
            .per_thread
            .first()
            .map(|t| t.port_issued.len())
            .unwrap_or(0);
        let mut agg = ThreadCounters::new(nports);
        for t in &self.per_thread {
            agg.merge(t);
        }
        agg
    }

    /// Fraction of issued instructions in each class, aggregated over
    /// threads. All-zero when nothing issued.
    pub fn class_fractions(&self) -> [f64; NUM_CLASSES] {
        let agg = self.aggregate();
        let total = agg.issued as f64;
        let mut f = [0.0; NUM_CLASSES];
        if total > 0.0 {
            for (fi, &issued) in f.iter_mut().zip(&agg.class_issued) {
                *fi = issued as f64 / total;
            }
        }
        f
    }

    /// Fraction of *port events* on each issue port (a store on a paired
    /// architecture counts on both its ports, as on real Nehalem).
    pub fn port_fractions(&self) -> Vec<f64> {
        let agg = self.aggregate();
        let total: u64 = agg.port_issued.iter().sum();
        if total == 0 {
            return vec![0.0; agg.port_issued.len()];
        }
        agg.port_issued
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// The DispHeld factor: the fraction of runnable thread-cycles on which
    /// dispatch was held for lack of saturated execution resources
    /// (aggregated over all hardware threads).
    pub fn disp_held_fraction(&self) -> f64 {
        let cpu: u64 = self.per_thread.iter().map(|t| t.cpu_cycles).sum();
        if cpu == 0 {
            return 0.0;
        }
        let held: u64 = self.per_thread.iter().map(|t| t.disp_held_cycles).sum();
        held as f64 / cpu as f64
    }

    /// The scalability factor: wall-clock time over average per-thread CPU
    /// time (`TotalTime / AvgThrdTime` in Eq. 1). At least 1 by
    /// construction; large values mean threads spent time blocked.
    pub fn scalability_ratio(&self) -> f64 {
        if self.per_thread.is_empty() || self.wall_cycles == 0 {
            return 1.0;
        }
        let total_cpu: u64 = self.per_thread.iter().map(|t| t.cpu_cycles).sum();
        let avg = total_cpu as f64 / self.per_thread.len() as f64;
        if avg <= 0.0 {
            return 1.0;
        }
        (self.wall_cycles as f64 / avg).max(1.0)
    }

    /// Aggregate instructions per cycle over the window (per core-cycle
    /// basis is not meaningful across SMT levels; this is machine IPC).
    pub fn ipc(&self) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        self.total_issued() as f64 / self.wall_cycles as f64
    }

    /// Cycles per instruction as the paper's Fig. 2 uses it: average CPU
    /// cycles consumed per issued instruction.
    pub fn cpi(&self) -> f64 {
        let issued = self.total_issued();
        if issued == 0 {
            return 0.0;
        }
        let cpu: u64 = self.per_thread.iter().map(|t| t.cpu_cycles).sum();
        cpu as f64 / issued as f64
    }

    /// L1D misses per thousand issued instructions (Fig. 2, top-left).
    pub fn l1_mpki(&self) -> f64 {
        let issued = self.total_issued();
        if issued == 0 {
            return 0.0;
        }
        let m: u64 = self.per_thread.iter().map(|t| t.l1d_misses).sum();
        m as f64 * 1000.0 / issued as f64
    }

    /// Branch mispredictions per thousand issued instructions (Fig. 2).
    pub fn branch_mpki(&self) -> f64 {
        let issued = self.total_issued();
        if issued == 0 {
            return 0.0;
        }
        let m: u64 = self.per_thread.iter().map(|t| t.branch_mispredicts).sum();
        m as f64 * 1000.0 / issued as f64
    }

    /// Fraction of issued instructions that are vector-scalar/floating
    /// point ("% of VSU instructions", Fig. 2 bottom-right).
    pub fn vsu_fraction(&self) -> f64 {
        self.class_fractions()[InstrClass::VectorScalar.index()]
    }

    /// Where the machine's dispatch capacity went over the window — a
    /// CPI-stack-style utilization breakdown. Fractions of total dispatch
    /// slots (cycles x width x cores, approximated by slot counters):
    /// `(used, held, other)` where `used` is slots that dispatched an
    /// instruction, `held` is the share of runnable thread-cycles the
    /// dispatcher was resource-held, and `other` is everything else
    /// (fetch-starved, sleeping, dependency stalls).
    pub fn utilization_breakdown(&self, dispatch_width: u64) -> (f64, f64, f64) {
        let capacity = (self.cores.cycles * dispatch_width) as f64;
        if capacity == 0.0 {
            return (0.0, 0.0, 1.0);
        }
        let used = (self.cores.dispatch_slots_used as f64 / capacity).min(1.0);
        // Attribute unused capacity to resource holds first (capped by the
        // held thread-cycle fraction), the rest to idleness/stalls, so the
        // three components always partition 1.0.
        let held_frac = self.disp_held_fraction()
            * (self.cores.active_cycles as f64 / self.cores.cycles.max(1) as f64);
        let held = held_frac.min(1.0 - used);
        let other = (1.0 - used - held).max(0.0);
        (used, held, other)
    }

    /// Useful work per cycle — the performance measure used for speedups.
    pub fn work_per_cycle(&self) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        self.total_work() as f64 / self.wall_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tc(nports: usize) -> ThreadCounters {
        ThreadCounters::new(nports)
    }

    #[test]
    fn record_issue_updates_all_views() {
        let mut t = tc(4);
        t.record_issue(InstrClass::Load, 2, 1);
        t.record_issue(InstrClass::Branch, 1, 0);
        assert_eq!(t.issued, 2);
        assert_eq!(t.work_units, 1);
        assert_eq!(t.spin_instrs, 1);
        assert_eq!(t.class_issued[InstrClass::Load.index()], 1);
        assert_eq!(t.port_issued[2], 1);
        assert_eq!(t.port_issued[1], 1);
    }

    #[test]
    fn delta_and_merge_are_inverse() {
        let mut a = tc(2);
        a.record_issue(InstrClass::FixedPoint, 0, 1);
        a.cpu_cycles = 100;
        let mut b = a.clone();
        b.record_issue(InstrClass::Store, 1, 1);
        b.cpu_cycles = 250;
        let d = b.delta(&a);
        assert_eq!(d.issued, 1);
        assert_eq!(d.cpu_cycles, 150);
        let mut back = a.clone();
        back.merge(&d);
        assert_eq!(back, b);
    }

    fn window(threads: Vec<ThreadCounters>, wall: u64, cores: CoreCounters) -> WindowMeasurement {
        WindowMeasurement {
            wall_cycles: wall,
            smt: SmtLevel::Smt4,
            per_thread: threads,
            cores,
        }
    }

    #[test]
    fn class_fractions_sum_to_one() {
        let mut t = tc(8);
        for _ in 0..3 {
            t.record_issue(InstrClass::Load, 0, 1);
        }
        t.record_issue(InstrClass::VectorScalar, 4, 1);
        let w = window(vec![t], 100, CoreCounters::default());
        let f = w.class_fractions();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((f[InstrClass::Load.index()] - 0.75).abs() < 1e-12);
        assert!((w.vsu_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fractions_empty_window_are_zero() {
        let w = window(vec![tc(4)], 100, CoreCounters::default());
        assert_eq!(w.class_fractions(), [0.0; NUM_CLASSES]);
        assert_eq!(w.port_fractions(), vec![0.0; 4]);
        assert_eq!(w.ipc(), 0.0);
        assert_eq!(w.cpi(), 0.0);
        assert_eq!(w.l1_mpki(), 0.0);
    }

    #[test]
    fn disp_held_fraction_uses_thread_cpu_cycles() {
        let mut a = tc(1);
        a.cpu_cycles = 800;
        a.disp_held_cycles = 200;
        let mut b = tc(1);
        b.cpu_cycles = 200;
        b.disp_held_cycles = 0;
        let w = window(vec![a, b], 1000, CoreCounters::default());
        assert!((w.disp_held_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scalability_ratio_all_busy_is_one() {
        let mut a = tc(1);
        a.cpu_cycles = 1000;
        let mut b = tc(1);
        b.cpu_cycles = 1000;
        let w = window(vec![a, b], 1000, CoreCounters::default());
        assert!((w.scalability_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scalability_ratio_half_sleeping_is_two() {
        let mut a = tc(1);
        a.cpu_cycles = 1000;
        let mut b = tc(1);
        b.cpu_cycles = 0;
        let w = window(vec![a, b], 1000, CoreCounters::default());
        assert!((w.scalability_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mpki_math() {
        let mut t = tc(1);
        t.issued = 2000;
        t.l1d_misses = 10;
        t.branch_mispredicts = 4;
        let w = window(vec![t], 100, CoreCounters::default());
        assert!((w.l1_mpki() - 5.0).abs() < 1e-12);
        assert!((w.branch_mpki() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_breakdown_sums_to_one_at_most() {
        let mut t = tc(1);
        t.cpu_cycles = 100;
        t.disp_held_cycles = 25;
        let cores = CoreCounters {
            cycles: 100,
            active_cycles: 100,
            dispatch_slots_used: 240, // of 100 cycles x 4-wide = 400
            ..Default::default()
        };
        let w = window(vec![t], 100, cores);
        let (used, held, other) = w.utilization_breakdown(4);
        assert!((used - 0.6).abs() < 1e-12);
        assert!((held - 0.25).abs() < 1e-12);
        assert!((used + held + other - 1.0).abs() < 1e-9);

        // Saturated dispatch leaves no room to attribute holds.
        let mut t2 = tc(1);
        t2.cpu_cycles = 100;
        t2.disp_held_cycles = 50;
        let cores2 = CoreCounters {
            cycles: 100,
            active_cycles: 100,
            dispatch_slots_used: 400,
            ..Default::default()
        };
        let w2 = window(vec![t2], 100, cores2);
        let (u2, h2, o2) = w2.utilization_breakdown(4);
        assert_eq!((u2, h2, o2), (1.0, 0.0, 0.0));
    }

    #[test]
    fn utilization_breakdown_empty_window() {
        let w = window(vec![tc(1)], 0, CoreCounters::default());
        let (u, h, o) = w.utilization_breakdown(6);
        assert_eq!((u, h, o), (0.0, 0.0, 1.0));
    }

    #[test]
    fn core_counters_delta_merge() {
        let a = CoreCounters {
            cycles: 10,
            active_cycles: 8,
            disp_held_cycles: 2,
            dispatch_slots_used: 30,
            issue_slots_used: 25,
            lmq_rejections: 1,
        };
        let b = CoreCounters {
            cycles: 25,
            active_cycles: 20,
            disp_held_cycles: 5,
            dispatch_slots_used: 70,
            issue_slots_used: 60,
            lmq_rejections: 3,
        };
        let d = b.delta(&a);
        assert_eq!(d.cycles, 15);
        let mut back = a;
        back.merge(&d);
        assert_eq!(back, b);
    }
}
