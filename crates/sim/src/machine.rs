//! Whole-machine configuration and the simulation driver.
//!
//! A [`MachineConfig`] describes chips x cores x caches; a [`Simulation`]
//! binds a machine at a given SMT level to a [`Workload`] and advances them
//! cycle by cycle. Following the paper's evaluation protocol (Section IV),
//! the number of software threads always equals the number of hardware
//! contexts: `chips * cores_per_chip * smt.ways()`. Changing the SMT level
//! — the simulated `smtctl` — drains the pipelines, rebuilds the hardware
//! contexts, and re-shards the workload across the new thread count while
//! keeping caches warm.

use crate::arch::{ArchDescriptor, SmtLevel};
use crate::cache::{CacheConfig, MemConfig, MemorySystem};
use crate::core::{Core, StepMode};
use crate::counters::{CoreCounters, ThreadCounters, WindowMeasurement};
use crate::error::Error;
use crate::profile::PhaseProfile;
use crate::soa::{IssueEngine, ScanKernel};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Issue-engine selection from the `SMT_SIM_ENGINE` environment variable
/// (`legacy`, `soa`, `soa-scalar`, `soa-simd`), read once per process.
/// Unset means the defaults ([`IssueEngine::Soa`], [`ScanKernel::Auto`]).
/// This is the escape hatch for comparing engines on a built binary
/// without recompiling or new CLI flags on every tool.
fn env_engine() -> (IssueEngine, ScanKernel) {
    static ENV: OnceLock<(IssueEngine, ScanKernel)> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("SMT_SIM_ENGINE").as_deref() {
        Ok("legacy") => (IssueEngine::Legacy, ScanKernel::Auto),
        Ok("soa") => (IssueEngine::Soa, ScanKernel::Auto),
        Ok("soa-scalar") => (IssueEngine::Soa, ScanKernel::ScalarU64),
        Ok("soa-simd") => (IssueEngine::Soa, ScanKernel::Simd),
        Ok(other) => {
            panic!("unknown SMT_SIM_ENGINE `{other}` (expected legacy|soa|soa-scalar|soa-simd)")
        }
        Err(_) => (IssueEngine::default(), ScanKernel::default()),
    })
}

/// Configuration of a complete machine.
#[derive(Debug, Clone, Serialize)]
pub struct MachineConfig {
    /// Core microarchitecture.
    pub arch: ArchDescriptor,
    /// Number of chips (sockets).
    pub chips: usize,
    /// Cores per chip.
    pub cores_per_chip: usize,
    /// Private L1D per core.
    pub l1: CacheConfig,
    /// Private L1 instruction cache per core.
    pub l1i: CacheConfig,
    /// Private L2 per core.
    pub l2: CacheConfig,
    /// Shared L3 per chip.
    pub l3: CacheConfig,
    /// Memory channel per chip.
    pub mem: MemConfig,
}

impl MachineConfig {
    /// The paper's AIX/POWER7 machine: `chips` sockets of 8 cores, SMT4.
    /// One chip reproduces the single-chip experiments (Figs. 6-9); two
    /// chips the 16-core experiments (Figs. 13-15).
    pub fn power7(chips: usize) -> MachineConfig {
        MachineConfig {
            arch: ArchDescriptor::power7(),
            chips,
            cores_per_chip: 8,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 2,
            },
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 4,
                line_bytes: 128,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 12,
            },
            l3: CacheConfig {
                size_bytes: 16 * 1024 * 1024,
                assoc: 16,
                line_bytes: 64,
                latency: 30,
            },
            mem: MemConfig {
                latency: 180,
                bytes_per_cycle: 16.0,
                remote_extra_latency: 120,
            },
        }
    }

    /// The paper's Linux/Core i7 machine: one quad-core Nehalem-like chip,
    /// SMT2 (Fig. 10, Fig. 12).
    pub fn nehalem() -> MachineConfig {
        MachineConfig {
            arch: ArchDescriptor::nehalem(),
            chips: 1,
            cores_per_chip: 4,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 2,
            },
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 4,
                line_bytes: 64,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 10,
            },
            l3: CacheConfig {
                size_bytes: 8 * 1024 * 1024,
                assoc: 16,
                line_bytes: 64,
                latency: 35,
            },
            mem: MemConfig {
                latency: 150,
                bytes_per_cycle: 12.0,
                remote_extra_latency: 0,
            },
        }
    }

    /// A small generic machine for tests and the quickstart example.
    pub fn generic(cores: usize) -> MachineConfig {
        MachineConfig {
            arch: ArchDescriptor::generic(),
            chips: 1,
            cores_per_chip: cores,
            l1: CacheConfig {
                size_bytes: 16 * 1024,
                assoc: 4,
                line_bytes: 64,
                latency: 2,
            },
            l1i: CacheConfig {
                size_bytes: 16 * 1024,
                assoc: 4,
                line_bytes: 64,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 128 * 1024,
                assoc: 8,
                line_bytes: 64,
                latency: 10,
            },
            l3: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                assoc: 16,
                line_bytes: 64,
                latency: 25,
            },
            mem: MemConfig {
                latency: 120,
                bytes_per_cycle: 8.0,
                remote_extra_latency: 0,
            },
        }
    }

    /// Total cores on the machine.
    pub fn total_cores(&self) -> usize {
        self.chips * self.cores_per_chip
    }

    /// Software threads used at an SMT level (threads == hardware contexts).
    pub fn sw_threads_at(&self, smt: SmtLevel) -> usize {
        self.total_cores() * smt.ways()
    }

    /// SMT levels this machine supports, lowest first.
    pub fn smt_levels(&self) -> Vec<SmtLevel> {
        SmtLevel::up_to(self.arch.max_smt)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), Error> {
        self.arch.validate()?;
        if self.chips == 0 || self.cores_per_chip == 0 {
            return Err(Error::InvalidMachine(
                "machine must have at least one core".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of running a workload (to completion or a cycle budget).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Cycles elapsed during this run call.
    pub cycles: u64,
    /// Workload work units emitted in total (cumulative).
    pub work_done: u64,
    /// The workload finished and pipelines drained.
    pub completed: bool,
}

impl RunResult {
    /// Useful work per cycle over this run.
    pub fn perf(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.work_done as f64 / self.cycles as f64
        }
    }
}

/// How [`Simulation::run_cycles`] and [`Simulation::run_until_finished`]
/// advance time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stepping {
    /// Step every cycle individually (the reference semantics).
    Naive,
    /// After a cycle in which no core did any work, ask every core for the
    /// next cycle at which it *could* act ([`Core::quiet_until`]) and jump
    /// there in one step, batch-charging the idle cycles. Produces
    /// bit-identical counters and completion cycles to [`Stepping::Naive`]
    /// (proven by the differential test suite) while skipping the long
    /// all-stalled stretches of memory- and synchronization-bound phases.
    FastForward,
}

/// A machine executing a workload.
pub struct Simulation<W: Workload> {
    cfg: MachineConfig,
    smt: SmtLevel,
    cores: Vec<Core>,
    mem: MemorySystem,
    workload: W,
    now: u64,
    sw: Vec<ThreadCounters>,
    stepping: Stepping,
    /// Issue engine the cores were built with.
    engine: IssueEngine,
    /// Scan kernel the cores were built with (SoA engine only).
    kernel: ScanKernel,
    /// Cycles advanced via fast-forward jumps (diagnostics/tests).
    idle_skipped: u64,
    /// Idle cycles owed to each core but not yet charged to its counters.
    /// Quiet cores accrue one debt cycle instead of a `charge_idle` call
    /// per cycle; debts are settled in one batched charge before the core
    /// next steps and at every public boundary (so externally observable
    /// counters are always exact).
    idle_debt: Vec<u64>,
    /// Per-core quiescence marks: core `i` provably cannot act before
    /// cycle `quiet_cache[i]`, so its step is replaced by a 1-cycle idle
    /// charge until then. Populated from [`Core::quiet_until`] whenever a
    /// step reports zero activity; sound because every cached event is an
    /// absolute, core-local time (sleep/park wakes, producer completions,
    /// fetch stalls) that no other core can pull earlier — any path that
    /// could consult shared state (workload fetch, a drained retire)
    /// makes `quiet_until` return `None` instead of a mark.
    quiet_cache: Vec<u64>,
}

impl<W: Workload> Simulation<W> {
    /// Build a machine at `smt` and bind `workload` across
    /// `cfg.sw_threads_at(smt)` software threads.
    pub fn new(cfg: MachineConfig, smt: SmtLevel, mut workload: W) -> Simulation<W> {
        cfg.validate().expect("invalid machine config");
        assert!(smt <= cfg.arch.max_smt, "machine does not support {smt}");
        let n = cfg.sw_threads_at(smt);
        workload.set_thread_count(n);
        let mem = MemorySystem::with_icache(
            cfg.chips,
            cfg.cores_per_chip,
            cfg.l1,
            cfg.l1i,
            cfg.l2,
            cfg.l3,
            cfg.mem,
        );
        let (engine, kernel) = env_engine();
        let cores = Self::build_cores(&cfg, smt, engine, kernel);
        let ncores = cores.len();
        let sw = vec![ThreadCounters::new(cfg.arch.num_ports()); n];
        Simulation {
            cfg,
            smt,
            cores,
            mem,
            workload,
            now: 0,
            sw,
            stepping: Stepping::FastForward,
            engine,
            kernel,
            idle_skipped: 0,
            idle_debt: vec![0; ncores],
            quiet_cache: vec![0; ncores],
        }
    }

    /// Hardware context `k` of core `c` is bound to software thread
    /// `k * ncores + c`, so threads spread across cores first (as an OS
    /// scheduler would place them).
    fn build_cores(
        cfg: &MachineConfig,
        smt: SmtLevel,
        engine: IssueEngine,
        kernel: ScanKernel,
    ) -> Vec<Core> {
        let ncores = cfg.total_cores();
        (0..ncores)
            .map(|c| {
                let sw_ids: Vec<usize> = (0..smt.ways()).map(|k| k * ncores + c).collect();
                Core::with_engine(&cfg.arch, c, &sw_ids, engine, kernel)
            })
            .collect()
    }

    /// The issue engine the cores run.
    pub fn issue_engine(&self) -> IssueEngine {
        self.engine
    }

    /// The scan kernel the cores were built with.
    pub fn scan_kernel(&self) -> ScanKernel {
        self.kernel
    }

    /// Rebuild the cores with a different issue engine. Only legal before
    /// the first cycle (engines are bit-identical, but swapping mid-run
    /// would discard in-flight state).
    pub fn set_issue_engine(&mut self, engine: IssueEngine) {
        assert_eq!(self.now, 0, "engine can only change before cycle 0");
        self.engine = engine;
        self.cores = Self::build_cores(&self.cfg, self.smt, self.engine, self.kernel);
        self.quiet_cache.fill(0);
        self.idle_debt.fill(0);
    }

    /// Rebuild the cores with a different scan kernel. Only legal before
    /// the first cycle. Panics if [`ScanKernel::Simd`] is forced on a host
    /// without AVX2 — gate on [`crate::soa::simd_available`].
    pub fn set_scan_kernel(&mut self, kernel: ScanKernel) {
        assert_eq!(self.now, 0, "kernel can only change before cycle 0");
        self.kernel = kernel;
        self.cores = Self::build_cores(&self.cfg, self.smt, self.engine, self.kernel);
        self.quiet_cache.fill(0);
        self.idle_debt.fill(0);
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Current SMT level.
    pub fn smt(&self) -> SmtLevel {
        self.smt
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The workload (for progress queries).
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// Cumulative per-software-thread counters since the last
    /// (re)configuration.
    pub fn thread_counters(&self) -> &[ThreadCounters] {
        &self.sw
    }

    /// Memory system (for diagnostics).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Workload finished and all pipelines drained.
    pub fn finished(&self) -> bool {
        self.workload.finished() && self.cores.iter().all(Core::drained)
    }

    /// Select how the run loops advance time. The default is
    /// [`Stepping::FastForward`]; [`Stepping::Naive`] exists for the
    /// differential tests that prove the two produce identical results.
    pub fn set_stepping(&mut self, stepping: Stepping) {
        // Marks cached under the previous mode may predate naive-mode
        // steps that changed core state; drop them rather than reason
        // about staleness across mode switches.
        self.quiet_cache.fill(0);
        self.stepping = stepping;
    }

    /// Cycles covered by fast-forward jumps so far (zero under
    /// [`Stepping::Naive`]). Diagnostics: how much of the run the
    /// quiescence analysis actually elided.
    pub fn idle_cycles_skipped(&self) -> u64 {
        self.idle_skipped
    }

    /// Advance a single cycle.
    pub fn step(&mut self) {
        self.step_once();
        self.settle_idle_debt();
    }

    /// Charge every core's outstanding idle debt in one batched call per
    /// core. After this, counters reflect all `self.now` cycles exactly.
    fn settle_idle_debt(&mut self) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            if self.idle_debt[i] > 0 {
                core.charge_idle(self.idle_debt[i], &mut self.sw);
                self.idle_debt[i] = 0;
            }
        }
    }

    /// Advance one cycle and report the machine-wide activity count (zero
    /// means every core's cycle was provably a no-op).
    fn step_once(&mut self) -> u32 {
        let fast = self.stepping == Stepping::FastForward;
        let mut activity = 0;
        for (i, core) in self.cores.iter_mut().enumerate() {
            // A core inside its quiescence window accrues one idle-debt
            // cycle (~no work at all) instead of a full pipeline step
            // (~µs) even while other cores stay busy — the per-core
            // analogue of `fast_forward_to`, which needs *every* core
            // quiet. An idle cycle's charge only depends on thread states,
            // which provably cannot change inside the window, so the
            // deferred batch charge is identical to per-cycle charges.
            if fast && self.quiet_cache[i] > self.now {
                self.idle_debt[i] += 1;
                continue;
            }
            if self.idle_debt[i] > 0 {
                core.charge_idle(self.idle_debt[i], &mut self.sw);
                self.idle_debt[i] = 0;
            }
            let act = core.step(
                &self.cfg.arch,
                self.now,
                StepMode::Normal,
                &mut self.workload,
                &mut self.mem,
                &mut self.sw,
            );
            if fast && act == 0 {
                self.quiet_cache[i] = core.quiet_until(&self.cfg.arch, self.now + 1).unwrap_or(0);
            }
            activity += act;
        }
        self.now += 1;
        activity
    }

    /// After a zero-activity cycle, jump straight to the next cycle at
    /// which any core could act (bounded by `end`), charging the skipped
    /// idle cycles exactly as naive stepping would. No-op if any core has
    /// work available now or next cycle.
    fn fast_forward_to(&mut self, end: u64) {
        let now = self.now;
        let mut target = end;
        for (i, core) in self.cores.iter().enumerate() {
            if self.quiet_cache[i] > now {
                target = target.min(self.quiet_cache[i]);
                continue;
            }
            match core.quiet_until(&self.cfg.arch, now) {
                Some(event) => target = target.min(event),
                None => return,
            }
        }
        if target <= now {
            return;
        }
        let k = target - now;
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.charge_idle(k + self.idle_debt[i], &mut self.sw);
            self.idle_debt[i] = 0;
        }
        self.idle_skipped += k;
        self.now = target;
    }

    /// Run exactly `n` cycles (or fewer if the workload finishes).
    /// Returns cycles actually run.
    pub fn run_cycles(&mut self, n: u64) -> u64 {
        let start = self.now;
        let end = start.saturating_add(n);
        if self.finished() {
            return 0;
        }
        while self.now < end {
            let activity = self.step_once();
            if activity > 0 {
                // `finished()` can only change on a cycle that did work,
                // so quiet cycles skip the (all-cores) drain scan.
                if self.finished() {
                    break;
                }
            } else if self.stepping == Stepping::FastForward && self.now < end {
                self.fast_forward_to(end);
            }
        }
        self.settle_idle_debt();
        self.now - start
    }

    /// Like [`run_cycles`](Self::run_cycles), but timestamps every pipeline
    /// phase of every core-step and accumulates the tick deltas into
    /// `prof`. Used by `repro perf --flamegraph`; not meant for throughput
    /// measurement (see the [`crate::profile`] overhead note).
    pub fn run_cycles_profiled(&mut self, n: u64, prof: &mut PhaseProfile) -> u64 {
        let start = self.now;
        let end = start.saturating_add(n);
        if self.finished() {
            return 0;
        }
        while self.now < end {
            let activity = self.step_once_profiled(prof);
            if activity > 0 {
                if self.finished() {
                    break;
                }
            } else if self.stepping == Stepping::FastForward && self.now < end {
                self.fast_forward_to(end);
            }
        }
        self.settle_idle_debt();
        prof.cycles += self.now - start;
        self.now - start
    }

    /// Profiled twin of [`step_once`](Self::step_once).
    fn step_once_profiled(&mut self, prof: &mut PhaseProfile) -> u32 {
        let fast = self.stepping == Stepping::FastForward;
        let mut activity = 0;
        for (i, core) in self.cores.iter_mut().enumerate() {
            if fast && self.quiet_cache[i] > self.now {
                self.idle_debt[i] += 1;
                continue;
            }
            if self.idle_debt[i] > 0 {
                core.charge_idle(self.idle_debt[i], &mut self.sw);
                self.idle_debt[i] = 0;
            }
            let act = core.step_profiled(
                &self.cfg.arch,
                self.now,
                StepMode::Normal,
                &mut self.workload,
                &mut self.mem,
                &mut self.sw,
                prof,
            );
            if fast && act == 0 {
                self.quiet_cache[i] = core.quiet_until(&self.cfg.arch, self.now + 1).unwrap_or(0);
            }
            activity += act;
        }
        self.now += 1;
        activity
    }

    /// Run until the workload completes or `max_cycles` elapse.
    pub fn run_until_finished(&mut self, max_cycles: u64) -> RunResult {
        let start = self.now;
        let end = start.saturating_add(max_cycles);
        if !self.finished() {
            while self.now < end {
                let activity = self.step_once();
                if activity > 0 {
                    if self.finished() {
                        break;
                    }
                } else if self.stepping == Stepping::FastForward && self.now < end {
                    self.fast_forward_to(end);
                }
            }
        }
        self.settle_idle_debt();
        RunResult {
            cycles: self.now - start,
            work_done: self.workload.work_done(),
            completed: self.finished(),
        }
    }

    /// Aggregate core counters over all cores.
    pub fn core_counters(&self) -> CoreCounters {
        let mut agg = CoreCounters::default();
        for c in &self.cores {
            agg.merge(&c.counters);
        }
        agg
    }

    /// Run a sampling window of up to `cycles` cycles and return the
    /// counter deltas — one "performance counter read" as the online
    /// sampler would take it.
    pub fn measure_window(&mut self, cycles: u64) -> WindowMeasurement {
        let sw_before = self.sw.clone();
        let cores_before = self.core_counters();
        let start = self.now;
        self.run_cycles(cycles);
        let wall = self.now - start;
        let per_thread: Vec<ThreadCounters> = self
            .sw
            .iter()
            .zip(&sw_before)
            .map(|(a, b)| a.delta(b))
            .collect();
        WindowMeasurement {
            wall_cycles: wall,
            smt: self.smt,
            per_thread,
            cores: self.core_counters().delta(&cores_before),
        }
    }

    /// Switch the machine to a different SMT level (the simulated
    /// `smtctl`): drain all pipelines, rebuild hardware contexts, and
    /// re-shard the workload across the new thread count. Caches stay warm.
    /// Per-thread counters reset (they describe the new thread set).
    ///
    /// Returns the number of drain cycles spent.
    pub fn reconfigure(&mut self, smt: SmtLevel) -> u64 {
        assert!(
            smt <= self.cfg.arch.max_smt,
            "machine does not support {smt}"
        );
        self.settle_idle_debt();
        let start = self.now;
        // Drain: no fetch, let everything in flight complete.
        let drain_limit = 1_000_000;
        while !self.cores.iter().all(Core::drained) {
            assert!(
                self.now - start < drain_limit,
                "pipeline failed to drain within {drain_limit} cycles"
            );
            for core in &mut self.cores {
                core.step(
                    &self.cfg.arch,
                    self.now,
                    StepMode::Drain,
                    &mut self.workload,
                    &mut self.mem,
                    &mut self.sw,
                );
            }
            self.now += 1;
        }
        let drained_in = self.now - start;
        self.smt = smt;
        let n = self.cfg.sw_threads_at(smt);
        self.workload.set_thread_count(n);
        self.cores = Self::build_cores(&self.cfg, smt, self.engine, self.kernel);
        self.quiet_cache = vec![0; self.cores.len()];
        self.idle_debt = vec![0; self.cores.len()];
        self.sw = vec![ThreadCounters::new(self.cfg.arch.num_ports()); n];
        drained_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, InstrClass};
    use crate::workload::ScriptedWorkload;

    fn fx_script(n: usize) -> Vec<Instr> {
        (0..n)
            .map(|_| Instr::simple(InstrClass::FixedPoint))
            .collect()
    }

    #[test]
    fn machine_presets_validate() {
        MachineConfig::power7(1).validate().unwrap();
        MachineConfig::power7(2).validate().unwrap();
        MachineConfig::nehalem().validate().unwrap();
        MachineConfig::generic(2).validate().unwrap();
    }

    #[test]
    fn sw_threads_follow_protocol() {
        let p7 = MachineConfig::power7(1);
        assert_eq!(p7.sw_threads_at(SmtLevel::Smt1), 8);
        assert_eq!(p7.sw_threads_at(SmtLevel::Smt2), 16);
        assert_eq!(p7.sw_threads_at(SmtLevel::Smt4), 32);
        let p7x2 = MachineConfig::power7(2);
        assert_eq!(p7x2.sw_threads_at(SmtLevel::Smt4), 64);
        let nhm = MachineConfig::nehalem();
        assert_eq!(nhm.sw_threads_at(SmtLevel::Smt2), 8);
        assert_eq!(nhm.smt_levels(), vec![SmtLevel::Smt1, SmtLevel::Smt2]);
    }

    #[test]
    fn simulation_runs_to_completion() {
        let cfg = MachineConfig::generic(2);
        let w = ScriptedWorkload::new("fx", fx_script(200));
        let mut sim = Simulation::new(cfg, SmtLevel::Smt1, w);
        assert_eq!(sim.workload().thread_count(), 2);
        let res = sim.run_until_finished(100_000);
        assert!(res.completed);
        assert_eq!(res.work_done, 400);
        assert!(res.perf() > 0.0);
    }

    #[test]
    fn measure_window_covers_requested_cycles() {
        let cfg = MachineConfig::generic(1);
        let w = ScriptedWorkload::new("fx", fx_script(100_000));
        let mut sim = Simulation::new(cfg, SmtLevel::Smt1, w);
        let m = sim.measure_window(500);
        assert_eq!(m.wall_cycles, 500);
        assert_eq!(m.per_thread.len(), 1);
        assert!(m.total_issued() > 0);
        assert_eq!(m.smt, SmtLevel::Smt1);
    }

    #[test]
    fn measure_window_is_a_delta() {
        let cfg = MachineConfig::generic(1);
        let w = ScriptedWorkload::new("fx", fx_script(100_000));
        let mut sim = Simulation::new(cfg, SmtLevel::Smt1, w);
        let a = sim.measure_window(300);
        let b = sim.measure_window(300);
        // Steady-state windows should be close in issue count, proving the
        // second is not cumulative.
        let ia = a.total_issued() as f64;
        let ib = b.total_issued() as f64;
        assert!((ia - ib).abs() / ia < 0.5, "ia={ia} ib={ib}");
    }

    #[test]
    fn reconfigure_changes_thread_count_and_drains() {
        let cfg = MachineConfig::generic(2);
        let w = ScriptedWorkload::new("fx", fx_script(50_000));
        let mut sim = Simulation::new(cfg, SmtLevel::Smt1, w);
        sim.run_cycles(100);
        assert_eq!(sim.workload().thread_count(), 2);
        sim.reconfigure(SmtLevel::Smt2);
        assert_eq!(sim.smt(), SmtLevel::Smt2);
        assert_eq!(sim.workload().thread_count(), 4);
        assert_eq!(sim.thread_counters().len(), 4);
        // Still runs after reconfiguration.
        let res = sim.run_until_finished(1_000_000);
        assert!(res.completed);
    }

    #[test]
    fn smt2_beats_smt1_on_dependency_bound_work() {
        // Per-thread dependent chains; more hardware threads means more
        // chains in flight per core.
        let chain: Vec<Instr> = (0..2000)
            .map(|_| Instr::simple(InstrClass::VectorScalar).with_dep(1))
            .collect();
        let cfg = MachineConfig::generic(2);

        let w1 = ScriptedWorkload::new("chain", chain.clone());
        let mut s1 = Simulation::new(cfg.clone(), SmtLevel::Smt1, w1);
        let r1 = s1.run_until_finished(10_000_000);
        assert!(r1.completed);

        let w2 = ScriptedWorkload::new("chain", chain);
        let mut s2 = Simulation::new(cfg, SmtLevel::Smt2, w2);
        let r2 = s2.run_until_finished(10_000_000);
        assert!(r2.completed);

        // SMT2 runs twice the total work (scripted: per-thread) in barely
        // more time, so work/cycle must be clearly higher.
        assert!(
            r2.perf() > r1.perf() * 1.5,
            "SMT2 perf {} vs SMT1 perf {}",
            r2.perf(),
            r1.perf()
        );
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn smt4_rejected_on_smt2_machine() {
        let cfg = MachineConfig::nehalem();
        let w = ScriptedWorkload::new("fx", fx_script(10));
        let _ = Simulation::new(cfg, SmtLevel::Smt4, w);
    }

    #[test]
    fn two_chip_machine_runs_remote_accesses() {
        let cfg = MachineConfig::power7(2);
        let script: Vec<Instr> = (0..200u64)
            .map(|k| {
                let mut i = Instr::load(k * 4096 * 64);
                i.remote = true;
                i
            })
            .collect();
        let w = ScriptedWorkload::new("remote", script);
        let mut sim = Simulation::new(cfg, SmtLevel::Smt1, w);
        let res = sim.run_until_finished(5_000_000);
        assert!(res.completed);
        let remote: u64 = sim
            .thread_counters()
            .iter()
            .map(|t| t.remote_accesses)
            .sum();
        assert!(remote > 0, "expected remote accesses on a two-chip machine");
    }
}
