//! The workspace-wide error type.
//!
//! Every layer that can reject input — machine/arch validation in this
//! crate, workload-spec validation in `smt-workloads`, result lookups and
//! the batch engine in `smt-experiments` — reports through [`Error`], so
//! callers compose fallible paths with `?` instead of unwinding through
//! `expect`/`assert!`.

use crate::arch::SmtLevel;

/// Unified error for configuration, measurement, and persistence
/// failures across the smt-select workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A machine or architecture descriptor failed validation.
    InvalidMachine(String),
    /// A workload specification failed validation.
    InvalidWorkload(String),
    /// A result table has no measurement at the requested SMT level.
    MissingLevel {
        /// Benchmark whose table was consulted.
        benchmark: String,
        /// The absent level.
        level: SmtLevel,
    },
    /// A measured quantity is outside the domain a computation needs
    /// (e.g. non-positive performance in a speedup ratio).
    InvalidMeasurement(String),
    /// Reading or writing persisted results failed.
    Io(String),
    /// Encoding or decoding persisted results failed.
    Serde(String),
    /// A runtime configuration knob (CLI flag, env var, policy field)
    /// failed validation.
    Config(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidMachine(msg) => write!(f, "invalid machine: {msg}"),
            Error::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            Error::MissingLevel { benchmark, level } => {
                write!(f, "benchmark `{benchmark}` has no measurement at {level}")
            }
            Error::InvalidMeasurement(msg) => write!(f, "invalid measurement: {msg}"),
            Error::Io(msg) => write!(f, "i/o: {msg}"),
            Error::Serde(msg) => write!(f, "serialization: {msg}"),
            Error::Config(msg) => write!(f, "config: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e.to_string())
    }
}
