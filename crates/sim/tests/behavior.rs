//! Behavioural tests of the simulator as a black box: SMT phenomena the
//! paper's argument depends on must emerge from the pipeline model.

use smt_sim::{
    Fetched, Instr, InstrClass, MachineConfig, ScriptedWorkload, Simulation, SmtLevel, Workload,
};

fn script_of(n: usize, f: impl Fn(usize) -> Instr) -> Vec<Instr> {
    (0..n).map(f).collect()
}

fn run_perf(cfg: &MachineConfig, smt: SmtLevel, script: Vec<Instr>) -> (f64, u64) {
    let w = ScriptedWorkload::new("t", script);
    let mut sim = Simulation::new(cfg.clone(), smt, w);
    let r = sim.run_until_finished(50_000_000);
    assert!(r.completed, "did not finish");
    (r.perf(), r.cycles)
}

#[test]
fn homogeneous_fx_gains_nothing_from_smt() {
    // Independent fixed-point only: 2 FX ports bound throughput at every
    // SMT level, so per-level perf (work/cycle, with per-thread scripts
    // the work scales with thread count) stays roughly proportional to
    // thread count... measured per *machine*: total FX throughput is
    // capped at 2/cycle/core regardless of level.
    let cfg = MachineConfig::generic(1);
    let script = script_of(4_000, |_| Instr::simple(InstrClass::FixedPoint));
    let (p1, _) = run_perf(&cfg, SmtLevel::Smt1, script.clone());
    let (p2, _) = run_perf(&cfg, SmtLevel::Smt2, script);
    // Scripted workloads do per-thread work, so SMT2 runs 2x the work; a
    // port-bound workload finishes it in ~2x the time: perf ratio ~1.
    let ratio = p2 / p1;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "FX-bound speedup should be ~1, got {ratio}"
    );
}

#[test]
fn memory_latency_bound_work_gains_from_smt() {
    // Each thread chases misses with dependent loads: single thread leaves
    // the core idle; a second context fills the gaps.
    let cfg = MachineConfig::generic(1);
    let script = script_of(1_500, |k| {
        // Strided loads over 16 MiB with a dependency chain.
        Instr::load((k as u64) * 64 % (16 << 20)).with_dep(1)
    });
    let (p1, _) = run_perf(&cfg, SmtLevel::Smt1, script.clone());
    let (p2, _) = run_perf(&cfg, SmtLevel::Smt2, script);
    assert!(
        p2 / p1 > 1.4,
        "latency-bound work must gain from SMT2: {}",
        p2 / p1
    );
}

#[test]
fn partitioning_cost_shows_up_for_single_hot_thread() {
    // One thread running while the machine is configured at a higher SMT
    // level pays the static-partition cost (smaller window/queues).
    #[derive(Debug)]
    struct OneHot {
        left: u64,
        threads: usize,
    }
    impl Workload for OneHot {
        fn name(&self) -> &str {
            "onehot"
        }
        fn fetch(&mut self, t: usize, _now: u64) -> Fetched {
            if t != 0 || self.left == 0 {
                return Fetched::Finished;
            }
            self.left -= 1;
            Fetched::Instr(Instr::simple(InstrClass::VectorScalar).with_dep(2))
        }
        fn set_thread_count(&mut self, n: usize) {
            self.threads = n;
        }
        fn thread_count(&self) -> usize {
            self.threads
        }
        fn finished(&self) -> bool {
            self.left == 0
        }
        fn work_done(&self) -> u64 {
            0
        }
        fn total_work(&self) -> u64 {
            0
        }
    }
    let cfg = MachineConfig::generic(1);
    let run = |smt| {
        let mut sim = Simulation::new(
            cfg.clone(),
            smt,
            OneHot {
                left: 3_000,
                threads: 0,
            },
        );
        let r = sim.run_until_finished(10_000_000);
        assert!(r.completed);
        r.cycles
    };
    let at1 = run(SmtLevel::Smt1);
    let at2 = run(SmtLevel::Smt2);
    assert!(
        at2 >= at1,
        "partitioned resources cannot make a lone thread faster: {at1} vs {at2}"
    );
}

#[test]
fn branch_misses_create_smt_fillable_gaps() {
    let cfg = MachineConfig::generic(1);
    let mispredicting = script_of(3_000, |k| {
        if k % 8 == 7 {
            Instr::branch(true)
        } else {
            Instr::simple(InstrClass::FixedPoint)
        }
    });
    let (p1, _) = run_perf(&cfg, SmtLevel::Smt1, mispredicting.clone());
    let (p2, _) = run_perf(&cfg, SmtLevel::Smt2, mispredicting);
    assert!(
        p2 / p1 > 1.3,
        "mispredict bubbles should be fillable by SMT: {}",
        p2 / p1
    );
}

#[test]
fn window_measurement_factors_stay_in_range_over_time() {
    use smt_workloads::{catalog, SyntheticWorkload};
    let cfg = MachineConfig::power7(1);
    let mspec = smtsm::MetricSpec::for_arch(&cfg.arch);
    let w = SyntheticWorkload::new(catalog::ssca2().scaled(0.2));
    let mut sim = Simulation::new(cfg, SmtLevel::Smt4, w);
    for _ in 0..8 {
        let m = sim.measure_window(10_000);
        let f = smtsm::smtsm_factors(&mspec, &m);
        assert!(
            (0.0..=1.0).contains(&f.disp_held),
            "disp_held {}",
            f.disp_held
        );
        assert!(f.scalability >= 1.0);
        assert!(f.mix_deviation <= mspec.max_deviation() + 1e-9);
        if sim.finished() {
            break;
        }
    }
}

#[test]
fn cumulative_windows_equal_whole_run_counters() {
    use smt_workloads::{catalog, SyntheticWorkload};
    let cfg = MachineConfig::generic(2);
    let spec = catalog::mg().scaled(0.01);

    // One long window.
    let mut sim_a = Simulation::new(
        cfg.clone(),
        SmtLevel::Smt2,
        SyntheticWorkload::new(spec.clone()),
    );
    let whole = sim_a.measure_window(u64::MAX / 2);

    // Many short windows summed.
    let mut sim_b = Simulation::new(cfg, SmtLevel::Smt2, SyntheticWorkload::new(spec));
    let mut issued = 0u64;
    let mut held = 0u64;
    while !sim_b.finished() {
        let m = sim_b.measure_window(1_000);
        issued += m.total_issued();
        held += m.per_thread.iter().map(|t| t.disp_held_cycles).sum::<u64>();
    }
    assert_eq!(issued, whole.total_issued(), "windows must tile the run");
    let whole_held: u64 = whole.per_thread.iter().map(|t| t.disp_held_cycles).sum();
    assert_eq!(held, whole_held);
}

#[test]
fn smt_levels_share_caches_coherently_after_reconfigure() {
    use smt_workloads::{catalog, SyntheticWorkload};
    // Reconfiguration must keep the memory system consistent: a second
    // phase at a new level still completes and total work is conserved.
    let cfg = MachineConfig::power7(1);
    let spec = catalog::cg_mpi().scaled(0.05);
    let total = spec.total_work;
    let mut sim = Simulation::new(cfg, SmtLevel::Smt2, SyntheticWorkload::new(spec));
    sim.run_cycles(20_000);
    sim.reconfigure(SmtLevel::Smt4);
    sim.run_cycles(20_000);
    sim.reconfigure(SmtLevel::Smt1);
    let r = sim.run_until_finished(200_000_000);
    assert!(r.completed);
    assert_eq!(r.work_done, total);
}

#[test]
fn remote_fraction_slows_two_chip_runs() {
    use smt_workloads::{catalog, SyntheticWorkload};
    let cfg = MachineConfig::power7(2);
    let local = catalog::ssca2().scaled(0.1);
    let mut remote = local.clone();
    remote.mem.remote_fraction = 0.9;

    let run = |spec: smt_workloads::WorkloadSpec| {
        let mut sim = Simulation::new(cfg.clone(), SmtLevel::Smt2, SyntheticWorkload::new(spec));
        let r = sim.run_until_finished(500_000_000);
        assert!(r.completed);
        (
            r.cycles,
            sim.thread_counters()
                .iter()
                .map(|t| t.remote_accesses)
                .sum::<u64>(),
        )
    };
    let (_, remote_accesses_local) = run(local);
    let (_, remote_accesses_remote) = run(remote);
    assert!(
        remote_accesses_remote > remote_accesses_local * 2,
        "remote fraction must drive remote accesses: {remote_accesses_local} vs {remote_accesses_remote}"
    );
}

#[test]
fn dynamic_partitioning_speeds_up_a_lone_thread_on_a_wide_level() {
    use smt_sim::Partitioning;
    // One runnable thread on a core configured at SMT4: with Dynamic
    // partitioning it gets the whole core (POWER7 ST mode); with Static it
    // is stuck with quarter shares.
    #[derive(Debug)]
    struct Lone {
        left: u64,
        threads: usize,
    }
    impl Workload for Lone {
        fn name(&self) -> &str {
            "lone"
        }
        fn fetch(&mut self, t: usize, _now: u64) -> Fetched {
            if t != 0 || self.left == 0 {
                return Fetched::Finished;
            }
            self.left -= 1;
            Fetched::Instr(Instr::simple(InstrClass::VectorScalar).with_dep(3))
        }
        fn set_thread_count(&mut self, n: usize) {
            self.threads = n;
        }
        fn thread_count(&self) -> usize {
            self.threads
        }
        fn finished(&self) -> bool {
            self.left == 0
        }
        fn work_done(&self) -> u64 {
            0
        }
        fn total_work(&self) -> u64 {
            0
        }
    }
    let run = |policy| {
        let mut cfg = MachineConfig::power7(1);
        cfg.arch.partitioning = policy;
        let mut sim = Simulation::new(
            cfg,
            SmtLevel::Smt4,
            Lone {
                left: 6_000,
                threads: 0,
            },
        );
        let r = sim.run_until_finished(10_000_000);
        assert!(r.completed);
        r.cycles
    };
    let fixed = run(Partitioning::Static);
    let dynamic = run(Partitioning::Dynamic);
    assert!(
        dynamic < fixed,
        "dynamic partitioning must help a lone thread: static {fixed}, dynamic {dynamic}"
    );
}

#[test]
fn unpartitioned_queues_let_a_stalled_thread_starve_siblings() {
    use smt_sim::Partitioning;
    // Thread 0 chases cache misses (its dependents would flood shared
    // queues); threads 1-3 do clean FX work. Partitioning protects the
    // siblings' throughput.
    use smt_workloads::{AccessPattern, DepProfile, InstrMix, MemBehavior, WorkloadSpec};
    let mut spec = WorkloadSpec::new("mixed-pressure", 120_000);
    spec.mix = InstrMix {
        load: 0.45,
        store: 0.05,
        branch: 0.05,
        cond_reg: 0.0,
        fixed: 0.4,
        vector: 0.05,
    }
    .normalized();
    spec.dep = DepProfile {
        prob: 0.95,
        max_dist: 2,
    };
    spec.mem = MemBehavior::private(8 << 20, AccessPattern::Random);
    let run = |policy| {
        let mut cfg = MachineConfig::power7(1);
        cfg.arch.partitioning = policy;
        let mut sim = Simulation::new(
            cfg,
            SmtLevel::Smt4,
            smt_workloads::SyntheticWorkload::new(spec.clone()),
        );
        let r = sim.run_until_finished(200_000_000);
        assert!(r.completed);
        r.perf()
    };
    let part = run(Partitioning::Static);
    let none = run(Partitioning::None);
    assert!(
        part >= none * 0.95,
        "partitioning should not lose to a free-for-all on miss-heavy work: {part} vs {none}"
    );
}

#[test]
fn icache_pressure_stalls_the_front_end() {
    use smt_workloads::{SyntheticWorkload, WorkloadSpec};
    // The same workload with a tiny vs. huge code footprint: the huge one
    // must take L1I misses and lose front-end throughput at SMT1.
    let cfg = MachineConfig::power7(1);
    let run = |code: u64| {
        let mut spec = WorkloadSpec::new("icache-test", 150_000);
        spec.code_footprint = code;
        let mut sim = Simulation::new(cfg.clone(), SmtLevel::Smt1, SyntheticWorkload::new(spec));
        let r = sim.run_until_finished(200_000_000);
        assert!(r.completed);
        let l1i: u64 = sim.thread_counters().iter().map(|t| t.l1i_misses).sum();
        (r.perf(), l1i)
    };
    let (perf_small, miss_small) = run(4 * 1024);
    let (perf_big, miss_big) = run(1024 * 1024);
    assert!(
        miss_big > miss_small * 10,
        "big code must miss the L1I: {miss_small} vs {miss_big}"
    );
    assert!(
        perf_big < perf_small * 0.97,
        "front-end stalls must cost throughput: {perf_small} vs {perf_big}"
    );
}

#[test]
fn icache_stalls_are_smt_fillable() {
    use smt_workloads::{SyntheticWorkload, WorkloadSpec};
    // Front-end bubbles from instruction-cache misses are exactly the kind
    // of gap other hardware threads can fill, so a code-heavy workload
    // should gain *more* from SMT than the same workload with tiny code.
    let cfg = MachineConfig::power7(1);
    let speedup = |code: u64| {
        let mut spec = WorkloadSpec::new("icache-smt", 200_000);
        spec.code_footprint = code;
        let run = |smt| {
            let mut sim = Simulation::new(cfg.clone(), smt, SyntheticWorkload::new(spec.clone()));
            let r = sim.run_until_finished(200_000_000);
            assert!(r.completed);
            r.perf()
        };
        run(SmtLevel::Smt4) / run(SmtLevel::Smt1)
    };
    let small = speedup(4 * 1024);
    let big = speedup(512 * 1024);
    assert!(
        big > small * 1.02,
        "icache-bound code should benefit more from SMT: {small:.3} vs {big:.3}"
    );
}

#[test]
fn predictor_model_produces_emergent_mispredictions() {
    use smt_sim::BranchPredictorConfig;
    use smt_workloads::{SyntheticWorkload, WorkloadSpec};
    // With the gshare model enabled, mispredictions come from the PC and
    // outcome streams even though the workload's pre-rolled flag rate is 0.
    let mut cfg = MachineConfig::power7(1);
    // Bimodal configuration: at this (test-sized) run length a history-
    // indexed table would still be warming up; per-PC counters converge
    // fast enough to check the emergent rate.
    cfg.arch.branch_predictor = Some(BranchPredictorConfig {
        table_bits: 14,
        history_bits: 0,
    });
    let mut spec = WorkloadSpec::new("bpred", 120_000);
    spec.branch_mispredict_rate = 0.0; // flags all clear
    spec.code_footprint = 4 * 1024;
    let mut sim = Simulation::new(cfg, SmtLevel::Smt2, SyntheticWorkload::new(spec.clone()));
    let r = sim.run_until_finished(200_000_000);
    assert!(r.completed);
    let branches: u64 = sim.thread_counters().iter().map(|t| t.branches).sum();
    let misses: u64 = sim
        .thread_counters()
        .iter()
        .map(|t| t.branch_mispredicts)
        .sum();
    assert!(branches > 1_000);
    let rate = misses as f64 / branches as f64;
    // Mostly-biased branches with a data-dependent minority: a learned
    // predictor should land well between "perfect" and "random".
    assert!(
        (0.02..=0.30).contains(&rate),
        "emergent misprediction rate out of range: {rate}"
    );

    // Without the model, the zero flag rate means zero mispredictions.
    let cfg = MachineConfig::power7(1);
    let mut sim = Simulation::new(cfg, SmtLevel::Smt2, SyntheticWorkload::new(spec));
    sim.run_until_finished(200_000_000);
    let misses: u64 = sim
        .thread_counters()
        .iter()
        .map(|t| t.branch_mispredicts)
        .sum();
    assert_eq!(misses, 0);
}

#[test]
fn shared_predictor_takes_more_misses_at_higher_smt() {
    use smt_sim::BranchPredictorConfig;
    use smt_workloads::{SyntheticWorkload, WorkloadSpec};
    // Co-resident threads alias each other's gshare entries and pollute
    // the shared global history: the per-branch miss rate should not
    // *improve* when more threads share the predictor, and usually gets
    // worse — one of Section I's shared-resource contention channels.
    let mut cfg = MachineConfig::power7(1);
    cfg.arch.branch_predictor = Some(BranchPredictorConfig {
        table_bits: 8,
        history_bits: 0,
    });
    let rate_at = |smt| {
        let mut spec = WorkloadSpec::new("bpred-smt", 150_000);
        spec.branch_mispredict_rate = 0.0;
        spec.code_footprint = 8 * 1024;
        let mut sim = Simulation::new(cfg.clone(), smt, SyntheticWorkload::new(spec));
        let r = sim.run_until_finished(200_000_000);
        assert!(r.completed);
        let branches: u64 = sim.thread_counters().iter().map(|t| t.branches).sum();
        let misses: u64 = sim
            .thread_counters()
            .iter()
            .map(|t| t.branch_mispredicts)
            .sum();
        misses as f64 / branches.max(1) as f64
    };
    let r1 = rate_at(SmtLevel::Smt1);
    let r4 = rate_at(SmtLevel::Smt4);
    assert!(
        r4 > r1 * 0.95,
        "sharing the predictor must not improve the miss rate: {r1:.3} -> {r4:.3}"
    );
}
