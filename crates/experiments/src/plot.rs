//! Text-mode scatter plots.
//!
//! The paper's evaluation figures are scatter plots; a data table shows
//! the numbers but not the *shape*. This renders a compact ASCII plot —
//! points, the learned threshold as a vertical line, and the speedup=1
//! line — so `repro fig6` output looks like Fig. 6 at a glance in any
//! terminal.

/// Render a scatter plot of `points` into a `width x height` character
/// grid. `vline` draws a vertical marker (the threshold); `hline` a
/// horizontal one (speedup = 1).
pub fn ascii_scatter(
    points: &[(f64, f64)],
    width: usize,
    height: usize,
    vline: Option<f64>,
    hline: Option<f64>,
    x_label: &str,
    y_label: &str,
) -> String {
    assert!(width >= 16 && height >= 6, "plot too small");
    if points.is_empty() {
        return format!("(no points)\n{x_label} / {y_label}\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if let Some(v) = vline {
        x_min = x_min.min(v);
        x_max = x_max.max(v);
    }
    if let Some(h) = hline {
        y_min = y_min.min(h);
        y_max = y_max.max(h);
    }
    // Pad degenerate ranges.
    if x_max - x_min < 1e-12 {
        x_max = x_min + 1.0;
    }
    if y_max - y_min < 1e-12 {
        y_max = y_min + 1.0;
    }
    // A little margin so extreme points do not sit on the border.
    let xm = (x_max - x_min) * 0.04;
    let ym = (y_max - y_min) * 0.08;
    let (x_min, x_max) = (x_min - xm, x_max + xm);
    let (y_min, y_max) = (y_min - ym, y_max + ym);

    let col = |x: f64| (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
    let row = |y: f64| {
        height - 1 - (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize
    };

    let mut grid = vec![vec![' '; width]; height];
    if let Some(h) = hline {
        for cell in &mut grid[row(h)] {
            *cell = '-';
        }
    }
    if let Some(v) = vline {
        let c = col(v);
        for line in &mut grid {
            line[c] = if line[c] == '-' { '+' } else { '|' };
        }
    }
    for &(x, y) in points {
        let (r, c) = (row(y), col(x));
        grid[r][c] = match grid[r][c] {
            '*' | '2'..='8' => {
                let n = if grid[r][c] == '*' {
                    2
                } else {
                    grid[r][c] as u8 - b'0' + 1
                };
                (b'0' + n.min(9)) as char
            }
            _ => '*',
        };
    }

    let mut out = String::new();
    for (ri, r) in grid.iter().enumerate() {
        let y_edge = if ri == 0 {
            format!("{y_max:7.2} ")
        } else if ri == height - 1 {
            format!("{y_min:7.2} ")
        } else {
            "        ".to_string()
        };
        out.push_str(&y_edge);
        out.push('|');
        out.extend(r.iter());
        out.push('\n');
    }
    out.push_str("        +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "        {x_min:<9.3}{:^w$}{x_max:>9.3}\n",
        x_label,
        w = width.saturating_sub(18)
    ));
    out.push_str(&format!("        y: {y_label}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_points_threshold_and_unity_line() {
        let pts = vec![(0.01, 1.8), (0.05, 1.4), (0.2, 0.6), (0.3, 0.4)];
        let s = ascii_scatter(&pts, 40, 10, Some(0.12), Some(1.0), "SMTsm", "speedup");
        assert!(s.contains('*'), "points drawn");
        assert!(s.contains('|'), "threshold line drawn");
        assert!(s.contains('-'), "unity line drawn");
        assert!(s.contains("SMTsm"));
        assert!(s.contains("speedup"));
        // 10 grid rows + axis + 2 label rows.
        assert_eq!(s.lines().count(), 13);
    }

    #[test]
    fn overlapping_points_count_up() {
        let pts = vec![(0.5, 0.5); 4];
        let s = ascii_scatter(&pts, 20, 6, None, None, "x", "y");
        assert!(
            s.contains('4'),
            "coincident points should show a count: {s}"
        );
    }

    #[test]
    fn empty_input_is_graceful() {
        let s = ascii_scatter(&[], 40, 10, None, None, "x", "y");
        assert!(s.contains("no points"));
    }

    #[test]
    fn degenerate_ranges_do_not_panic() {
        let pts = vec![(0.1, 1.0), (0.1, 1.0)];
        let s = ascii_scatter(&pts, 20, 6, Some(0.1), Some(1.0), "x", "y");
        assert!(s.contains('*') || s.contains('2'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_rejected() {
        ascii_scatter(&[(0.0, 0.0)], 4, 2, None, None, "x", "y");
    }
}
