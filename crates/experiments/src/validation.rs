//! Seed-robustness validation.
//!
//! The catalog's workloads are synthetic, so an honest reproduction must
//! show its headline numbers are not an artifact of one lucky RNG stream.
//! This experiment re-collects the single-chip suite under several seed
//! offsets (every benchmark's generator stream changes; its *declared*
//! characteristics do not) and reports how the trained threshold and the
//! success rate move across replicas.

use crate::engine::{Engine, RunRequest};
use crate::figures;
use crate::suite::{Machine, SuiteData};
use serde::{Deserialize, Serialize};
use smt_sim::Error;
use smt_stats::table::{fnum, Table};
use smt_stats::Summary;

/// One replica's headline numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Replica {
    /// Seed offset applied to every catalog spec.
    pub seed_offset: u64,
    /// Gini-trained threshold on this replica's fig-6 sample.
    pub threshold: f64,
    /// Success rate at that threshold.
    pub accuracy: f64,
    /// Pearson correlation of metric vs. speedup.
    pub pearson_r: Option<f64>,
}

/// The robustness report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Validation {
    /// Per-replica numbers.
    pub replicas: Vec<Replica>,
    /// Accuracy summary across replicas.
    pub accuracy_summary: (f64, f64),
    /// Threshold summary across replicas.
    pub threshold_summary: (f64, f64),
}

/// Collect `n` replicas of the single-chip suite at `scale`, each with a
/// different seed offset, and evaluate the fig-6 pipeline on each.
///
/// Replicas run through `engine`, so a cached engine skips every replica
/// that is already on disk (each seed offset hashes to its own cache
/// keys — replicas never alias each other's entries).
pub fn run_with(n: usize, scale: f64, engine: &Engine) -> Result<Validation, Error> {
    if n == 0 {
        return Err(Error::InvalidMeasurement(
            "validation needs at least one replica".into(),
        ));
    }
    let mut replicas = Vec::with_capacity(n);
    for k in 0..n {
        let offset = k as u64 * 7_919; // any fixed stride of seeds
        let machine = Machine::Power7OneChip;
        let plan = RunRequest::on(machine.config())
            .workloads(machine.suite().into_iter().map(|mut s| {
                s.seed = s.seed.wrapping_add(offset);
                s.scaled(scale)
            }))
            .all_levels()
            .plan()?;
        let sweep = engine.run(&plan);
        let data = SuiteData {
            machine,
            scale,
            results: sweep.results,
        };
        let fig = figures::fig6(&data)?;
        replicas.push(Replica {
            seed_offset: offset,
            threshold: fig.threshold,
            accuracy: fig.accuracy,
            pearson_r: fig.pearson_r,
        });
    }
    let acc = Summary::of(&replicas.iter().map(|r| r.accuracy).collect::<Vec<_>>());
    let thr = Summary::of(&replicas.iter().map(|r| r.threshold).collect::<Vec<_>>());
    Ok(Validation {
        replicas,
        accuracy_summary: (acc.mean, acc.stddev),
        threshold_summary: (thr.mean, thr.stddev),
    })
}

/// [`run_with`] on a default (parallel, uncached) engine.
pub fn run(n: usize, scale: f64) -> Result<Validation, Error> {
    run_with(n, scale, &Engine::new())
}

impl Validation {
    /// Render the report.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["seed offset", "threshold", "accuracy", "pearson r"]);
        for r in &self.replicas {
            t.row(vec![
                r.seed_offset.to_string(),
                fnum(r.threshold, 4),
                format!("{:.1}%", r.accuracy * 100.0),
                r.pearson_r
                    .map(|v| fnum(v, 3))
                    .unwrap_or_else(|| "n/a".into()),
            ]);
        }
        format!(
            "validate: seed robustness of the fig-6 pipeline\n\n{}\n\
             accuracy  mean {:.1}% (sd {:.1}pp)\n\
             threshold mean {:.4} (sd {:.4})\n",
            t.render(),
            self.accuracy_summary.0 * 100.0,
            self.accuracy_summary.1 * 100.0,
            self.threshold_summary.0,
            self.threshold_summary.1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "slow: collects multiple full suites; run with --ignored"]
    fn replicas_agree_on_the_shape() {
        let v = run(2, 0.05).unwrap();
        assert_eq!(v.replicas.len(), 2);
        for r in &v.replicas {
            assert!(r.accuracy >= 0.8, "replica accuracy {}", r.accuracy);
            assert!(r.pearson_r.unwrap() < -0.3, "replica r {:?}", r.pearson_r);
        }
        assert!(v.render().contains("seed robustness"));
    }
}
