//! The generic "SMTsm vs. speedup" scatter experiment.
//!
//! Figures 6, 8, 9, 10, 11, 12, 13, 14, and 15 are all instances of one
//! template: plot each benchmark's speedup between two SMT levels against
//! the metric measured at some level, learn a threshold, and report how
//! well the threshold separates the winners from the losers. This module
//! implements the template once; `crate::figures` instantiates it per
//! paper figure.

use crate::suite::SuiteData;
use serde::{Deserialize, Serialize};
use smt_sim::{Error, SmtLevel};
use smt_stats::classify::{mispredicted, SpeedupCase};
use smt_stats::corr::{pearson, spearman};
use smt_stats::gini::GiniSweep;
use smt_stats::resample::bootstrap_ci;
use smt_stats::table::{fnum, Table};

/// One benchmark's point on a scatter figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Benchmark label.
    pub name: String,
    /// SMTsm at the figure's measurement level.
    pub metric: f64,
    /// Speedup `hi/lo`.
    pub speedup: f64,
}

/// A fully evaluated scatter figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScatterFigure {
    /// Figure id ("fig6", ...).
    pub id: String,
    /// Human title, mirroring the paper's caption.
    pub title: String,
    /// SMT level the metric was measured at.
    pub metric_at: SmtLevel,
    /// Speedup numerator level.
    pub hi: SmtLevel,
    /// Speedup denominator level.
    pub lo: SmtLevel,
    /// The points.
    pub points: Vec<ScatterPoint>,
    /// Gini-learned threshold (midpoint of the optimal range).
    pub threshold: f64,
    /// Optimal-threshold range from the Gini sweep.
    pub threshold_range: (f64, f64),
    /// Minimum Gini impurity achieved.
    pub min_impurity: f64,
    /// Prediction success rate at the learned threshold.
    pub accuracy: f64,
    /// Benchmarks mispredicted at the learned threshold.
    pub mispredicted: Vec<String>,
    /// Pearson correlation between metric and speedup.
    pub pearson_r: Option<f64>,
    /// Spearman rank correlation.
    pub spearman_rho: Option<f64>,
    /// Bootstrap 95% confidence interval on the (retrained) prediction
    /// accuracy — how solid the success rate is over this benchmark sample.
    pub accuracy_ci: Option<smt_stats::ConfidenceInterval>,
}

impl ScatterFigure {
    /// Evaluate the template over a dataset.
    ///
    /// Fails with [`Error::MissingLevel`] when a benchmark lacks a
    /// measurement at one of the requested levels (e.g. its job failed in
    /// the engine sweep that collected `data`).
    pub fn evaluate(
        id: &str,
        title: &str,
        data: &SuiteData,
        metric_at: SmtLevel,
        hi: SmtLevel,
        lo: SmtLevel,
    ) -> Result<ScatterFigure, Error> {
        let points: Vec<ScatterPoint> = data
            .scatter_points(metric_at, hi, lo)?
            .into_iter()
            .map(|(name, metric, speedup)| ScatterPoint {
                name,
                metric,
                speedup,
            })
            .collect();
        let cases: Vec<SpeedupCase> = points
            .iter()
            .map(|p| SpeedupCase::new(p.name.clone(), p.metric, p.speedup))
            .collect();
        let sweep = GiniSweep::run(
            &cases
                .iter()
                .map(|c| smt_stats::gini::LabeledPoint::from_speedup(c.metric, c.speedup))
                .collect::<Vec<_>>(),
        );
        let threshold = sweep.best_separator();
        let confusion = smt_stats::classify::BinaryConfusion::score(&cases, threshold);
        let xs: Vec<f64> = points.iter().map(|p| p.metric).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.speedup).collect();
        // Bootstrap the whole train-and-score pipeline: each resample
        // relearns its own threshold, so the interval reflects threshold
        // instability too.
        let accuracy_ci = bootstrap_ci(
            &cases,
            |sample| {
                if sample.is_empty() {
                    return None;
                }
                let pts: Vec<smt_stats::gini::LabeledPoint> = sample
                    .iter()
                    .map(|c| smt_stats::gini::LabeledPoint::from_speedup(c.metric, c.speedup))
                    .collect();
                // A single-class resample has no well-posed threshold;
                // condition the interval on both classes being present.
                let goods = pts.iter().filter(|p| p.good).count();
                if goods == 0 || goods == pts.len() {
                    return None;
                }
                let t = GiniSweep::run(&pts).best_separator();
                Some(smt_stats::classify::BinaryConfusion::score(sample, t).accuracy())
            },
            400,
            0.95,
            0x5eed,
        );
        Ok(ScatterFigure {
            id: id.to_string(),
            title: title.to_string(),
            metric_at,
            hi,
            lo,
            threshold,
            threshold_range: sweep.optimal_range,
            min_impurity: sweep.min_impurity,
            accuracy: confusion.accuracy(),
            mispredicted: mispredicted(&cases, threshold)
                .into_iter()
                .map(String::from)
                .collect(),
            pearson_r: pearson(&xs, &ys),
            spearman_rho: spearman(&xs, &ys),
            accuracy_ci,
            points,
        })
    }

    /// The labeled cases (for threshold-method figures and success tables).
    pub fn cases(&self) -> Vec<SpeedupCase> {
        self.points
            .iter()
            .map(|p| SpeedupCase::new(p.name.clone(), p.metric, p.speedup))
            .collect()
    }

    /// CSV of the points (benchmark, metric, speedup, side, prefers).
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(vec!["benchmark", "metric", "speedup", "side", "prefers"]);
        for p in &self.points {
            t.row(vec![
                p.name.clone(),
                format!("{:.6}", p.metric),
                format!("{:.6}", p.speedup),
                if p.metric < self.threshold {
                    "left"
                } else {
                    "right"
                }
                .to_string(),
                if p.speedup >= 1.0 {
                    self.hi.to_string()
                } else {
                    self.lo.to_string()
                },
            ]);
        }
        t.to_csv()
    }

    /// Render the figure as the paper-style data table plus summary lines.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "benchmark",
            &format!("SMTsm@{}", self.metric_at),
            &format!("{}/{} speedup", self.hi, self.lo),
            "side",
            "prefers",
        ]);
        let mut sorted = self.points.clone();
        sorted.sort_by(|a, b| a.metric.total_cmp(&b.metric));
        for p in &sorted {
            t.row(vec![
                p.name.clone(),
                fnum(p.metric, 4),
                fnum(p.speedup, 3),
                if p.metric < self.threshold {
                    "left"
                } else {
                    "right"
                }
                .to_string(),
                if p.speedup >= 1.0 {
                    self.hi.to_string()
                } else {
                    self.lo.to_string()
                },
            ]);
        }
        let plot = crate::plot::ascii_scatter(
            &self
                .points
                .iter()
                .map(|p| (p.metric, p.speedup))
                .collect::<Vec<_>>(),
            64,
            16,
            Some(self.threshold),
            Some(1.0),
            &format!("SMTsm@{}", self.metric_at),
            &format!("{}/{} speedup", self.hi, self.lo),
        );
        let mut out = format!("{}: {}\n\n{}\n{}", self.id, self.title, plot, t.render());
        out.push_str(&format!(
            "\nthreshold = {:.4} (optimal range {:.4}..{:.4}, min impurity {:.3})\n",
            self.threshold, self.threshold_range.0, self.threshold_range.1, self.min_impurity
        ));
        out.push_str(&format!(
            "success rate = {:.1}% ({} mispredicted: {})\n",
            self.accuracy * 100.0,
            self.mispredicted.len(),
            if self.mispredicted.is_empty() {
                "none".to_string()
            } else {
                self.mispredicted.join(", ")
            }
        ));
        if let (Some(r), Some(rho)) = (self.pearson_r, self.spearman_rho) {
            out.push_str(&format!("pearson r = {r:.3}, spearman rho = {rho:.3}\n"));
        }
        if let Some(ci) = self.accuracy_ci {
            out.push_str(&format!(
                "bootstrap 95% CI on retrained accuracy: {:.1}%..{:.1}%\n",
                ci.lo * 100.0,
                ci.hi * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{BenchResult, LevelMeasurement};
    use crate::suite::Machine;
    use smtsm::SmtsmFactors;
    use std::collections::BTreeMap;

    fn fake_level(smt: SmtLevel, perf: f64, metric: f64) -> LevelMeasurement {
        LevelMeasurement {
            smt,
            perf,
            cycles: 1000,
            completed: true,
            factors: SmtsmFactors {
                mix_deviation: metric,
                disp_held: 1.0,
                scalability: 1.0,
            },
            naive: [0.0; 4],
        }
    }

    fn fake_data() -> SuiteData {
        // Two SMT4-winners with low metric, two losers with high metric.
        let mk = |name: &str, s41: f64, metric: f64| {
            let mut levels = BTreeMap::new();
            levels.insert(SmtLevel::Smt1, fake_level(SmtLevel::Smt1, 1.0, metric));
            levels.insert(
                SmtLevel::Smt2,
                fake_level(SmtLevel::Smt2, (1.0 + s41) / 2.0, metric),
            );
            levels.insert(SmtLevel::Smt4, fake_level(SmtLevel::Smt4, s41, metric));
            BenchResult {
                name: name.into(),
                levels,
            }
        };
        SuiteData {
            machine: Machine::Power7OneChip,
            scale: 1.0,
            results: vec![
                mk("win-a", 1.8, 0.01),
                mk("win-b", 1.4, 0.03),
                mk("lose-a", 0.7, 0.20),
                mk("lose-b", 0.4, 0.35),
            ],
        }
    }

    #[test]
    fn evaluate_learns_a_separating_threshold() {
        let fig = ScatterFigure::evaluate(
            "figX",
            "test",
            &fake_data(),
            SmtLevel::Smt4,
            SmtLevel::Smt4,
            SmtLevel::Smt1,
        )
        .unwrap();
        assert_eq!(fig.points.len(), 4);
        assert_eq!(fig.accuracy, 1.0);
        assert!(fig.threshold > 0.03 && fig.threshold < 0.20);
        assert!(fig.mispredicted.is_empty());
        assert!(
            fig.pearson_r.unwrap() < -0.5,
            "negative correlation expected"
        );
    }

    #[test]
    fn render_contains_all_points_and_summary() {
        let fig = ScatterFigure::evaluate(
            "fig6",
            "test render",
            &fake_data(),
            SmtLevel::Smt4,
            SmtLevel::Smt4,
            SmtLevel::Smt1,
        )
        .unwrap();
        let s = fig.render();
        for name in ["win-a", "win-b", "lose-a", "lose-b"] {
            assert!(s.contains(name), "missing {name} in render");
        }
        assert!(s.contains("threshold ="));
        assert!(s.contains("success rate = 100.0%"));
    }

    #[test]
    fn cases_roundtrip() {
        let fig = ScatterFigure::evaluate(
            "fig6",
            "t",
            &fake_data(),
            SmtLevel::Smt4,
            SmtLevel::Smt4,
            SmtLevel::Smt1,
        )
        .unwrap();
        let cases = fig.cases();
        assert_eq!(cases.len(), 4);
        assert_eq!(cases[0].name, "win-a");
    }
}
