//! The Section-V application experiment: dynamic SMT selection driven by
//! the metric, compared against static levels and the IPC-probe baseline,
//! on phase-changing workloads.
//!
//! The paper argues SMTsm "allows adaptively choosing the optimal SMT
//! level for a workload as it goes through different phases"; this
//! experiment quantifies it: each scenario concatenates an SMT-friendly
//! phase with an SMT-hostile one (or vice versa), so no static level is
//! right throughout.

use serde::{Deserialize, Serialize};
use smt_sched::{compare, ControllerConfig, PolicyComparison};
use smt_sim::{Error, MachineConfig, SmtLevel};
use smt_stats::table::{fnum, Table};
use smt_workloads::{catalog, PhasedWorkload, WorkloadSpec};
use smtsm::{LevelSelector, ThresholdPredictor};

/// One phase-changing scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name.
    pub name: String,
    /// Phase spec names, in order.
    pub phases: Vec<String>,
    /// Policy results.
    pub comparison: PolicyComparison,
}

/// Full scheduler-demo result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedDemo {
    /// All scenarios.
    pub scenarios: Vec<Scenario>,
    /// The thresholds the selector used (SMT4-vs-SMT2, SMT2-vs-SMT1).
    pub thresholds: (f64, f64),
}

/// The built-in phase-change scenarios (phases scaled by `scale`).
pub fn scenarios(scale: f64) -> Vec<(String, Vec<WorkloadSpec>)> {
    vec![
        (
            "compute-then-contention".into(),
            vec![
                catalog::ep().scaled(scale),
                catalog::specjbb_contention().scaled(scale),
            ],
        ),
        (
            "contention-then-compute".into(),
            vec![
                catalog::specjbb_contention().scaled(scale),
                catalog::blackscholes().scaled(scale),
            ],
        ),
        (
            "compute-bandwidth-compute".into(),
            vec![
                catalog::ep().scaled(scale * 0.6),
                catalog::swim().scaled(scale * 0.6),
                catalog::bt().scaled(scale * 0.6),
            ],
        ),
    ]
}

/// Run the scheduler demo with thresholds trained elsewhere (e.g. from the
/// fig-6/fig-8 data).
pub fn run(
    scale: f64,
    threshold_top: f64,
    threshold_mid: f64,
    max_cycles: u64,
) -> Result<SchedDemo, Error> {
    let cfg = MachineConfig::power7(1);
    let selector = LevelSelector::three_level(
        ThresholdPredictor::fixed(threshold_top),
        ThresholdPredictor::fixed(threshold_mid),
    );
    let ctl = ControllerConfig {
        window_cycles: 25_000,
        alpha: 0.6,
        hysteresis: 2,
        probe_interval: 8,
        phase_detect: true,
    };
    let mut out = Vec::new();
    for (name, phases) in scenarios(scale) {
        let phase_names: Vec<String> = phases.iter().map(|p| p.name.clone()).collect();
        let comparison = compare(
            &cfg,
            || PhasedWorkload::new(name.clone(), phases.clone()),
            selector.clone(),
            ctl,
            max_cycles,
        )?;
        out.push(Scenario {
            name,
            phases: phase_names,
            comparison,
        });
    }
    Ok(SchedDemo {
        scenarios: out,
        thresholds: (threshold_top, threshold_mid),
    })
}

impl SchedDemo {
    /// Render the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "scenario",
            "static SMT1",
            "static SMT2",
            "static SMT4",
            "oracle",
            "dynamic",
            "dyn/oracle",
            "IPC-probe",
            "switches",
        ]);
        for s in &self.scenarios {
            let perf_at = |lvl: SmtLevel| {
                s.comparison
                    .static_perf
                    .iter()
                    .find(|(l, _)| *l == lvl)
                    .map(|(_, p)| *p)
                    .unwrap_or(0.0)
            };
            t.row(vec![
                s.name.clone(),
                fnum(perf_at(SmtLevel::Smt1), 2),
                fnum(perf_at(SmtLevel::Smt2), 2),
                fnum(perf_at(SmtLevel::Smt4), 2),
                format!(
                    "{} ({})",
                    fnum(s.comparison.oracle_perf().unwrap_or(f64::NAN), 2),
                    s.comparison.oracle
                ),
                fnum(s.comparison.dynamic.perf, 2),
                fnum(s.comparison.dynamic_vs_oracle().unwrap_or(f64::NAN), 2),
                format!(
                    "{} ({})",
                    fnum(s.comparison.ipc_probe.1, 2),
                    s.comparison.ipc_probe.0
                ),
                s.comparison.dynamic.switches.len().to_string(),
            ]);
        }
        format!(
            "sched: dynamic SMT selection on phase-changing workloads \
             (thresholds {:.3}/{:.3}; perf = work/cycle)\n\n{}",
            self.thresholds.0,
            self.thresholds.1,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_well_formed() {
        let sc = scenarios(0.1);
        assert_eq!(sc.len(), 3);
        for (name, phases) in &sc {
            assert!(!name.is_empty());
            assert!(phases.len() >= 2);
            for p in phases {
                p.validate().unwrap();
            }
        }
    }

    #[test]
    #[ignore = "slow: full scheduler demo; run with --ignored"]
    fn demo_runs_and_dynamic_is_reasonable() {
        let demo = run(0.05, 0.10, 0.15, 500_000_000).unwrap();
        assert_eq!(demo.scenarios.len(), 3);
        for s in &demo.scenarios {
            assert!(s.comparison.dynamic.completed, "{} incomplete", s.name);
            assert!(
                s.comparison.dynamic_vs_oracle().unwrap() > 0.6,
                "{}: dynamic at {:.2} of oracle",
                s.name,
                s.comparison.dynamic_vs_oracle().unwrap()
            );
        }
        assert!(demo.render().contains("dyn/oracle"));
    }
}
