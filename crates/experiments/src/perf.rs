//! Perf-trajectory harness: machine-readable simulator throughput numbers.
//!
//! The ROADMAP's bar is that every PR makes a hot path measurably faster,
//! which is only checkable if the repo carries its own trajectory. This
//! module measures a fixed matrix of catalog workloads × SMT levels ×
//! machine sizes (the same cases as `benches/simulator.rs`), reports
//! simulated **cycles per wall-second**, and appends the run to
//! `BENCH_sim.json` so successive PRs accumulate a before/after history.
//!
//! Entry points:
//!
//! - [`run_perf`] — measure the matrix, returning a [`PerfRun`].
//! - [`PerfReport::load`] / [`PerfReport::save`] — the on-disk trajectory.
//! - [`check_regression`] — compare a fresh run against the last committed
//!   one and list cases whose throughput dropped more than a tolerance
//!   (used by the CI `bench-smoke` job and `repro perf --check`).

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use smt_sim::{Error, IssueEngine, MachineConfig, ScanKernel, Simulation, SmtLevel};
use smt_workloads::{catalog, SyntheticWorkload, WorkloadSpec};

/// Bumped when the JSON layout of [`PerfReport`] changes shape.
///
/// Version history:
/// - 1: `label` + `entries` + optional `repro_all_wall_secs`.
/// - 2: adds the optional `kernel` tag on each run recording the issue
///   engine / scan-kernel variant it was measured with. Version-1 files
///   load unchanged (missing tag reads as `None`).
pub const PERF_SCHEMA_VERSION: u32 = 2;

/// Cycles simulated before the timed window, so cold-start effects
/// (empty caches, empty queues) don't pollute the steady-state rate.
const WARMUP_CYCLES: u64 = 2_000;

/// One measured case: a workload on a machine at an SMT level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfEntry {
    /// Case name, e.g. `p7_ep` or `p7x2_mg`.
    pub bench: String,
    /// Hardware threads per core during the measurement.
    pub smt: usize,
    /// Simulated cycles in the timed window.
    pub cycles: u64,
    /// Best-of-samples wall time for the window, in seconds.
    pub wall_secs: f64,
    /// Throughput: `cycles / wall_secs`.
    pub cycles_per_sec: f64,
}

impl PerfEntry {
    /// Stable identity of the case within a run (`bench` × `smt`).
    pub fn case_id(&self) -> String {
        format!("{}/smt{}", self.bench, self.smt)
    }

    /// Build an entry from a generic event rate — `events` observed over
    /// `wall_secs` — so non-simulator harnesses (e.g. the `smtd` load
    /// generator, which counts requests instead of cycles) can record into
    /// the same trajectory format. `cycles` holds the event count and
    /// `cycles_per_sec` the rate, which is exactly what
    /// [`check_regression`] compares, so a rate drop is flagged like any
    /// simulator slowdown.
    pub fn from_rate(
        bench: impl Into<String>,
        smt: usize,
        events: u64,
        wall_secs: f64,
    ) -> PerfEntry {
        let wall_secs = wall_secs.max(f64::MIN_POSITIVE);
        PerfEntry {
            bench: bench.into(),
            smt,
            cycles: events,
            wall_secs,
            cycles_per_sec: events as f64 / wall_secs,
        }
    }
}

/// One full sweep over the measurement matrix, labeled for the trajectory
/// (e.g. `"pr2-before"`, `"pr2-after"`).
///
/// Serialization is hand-written (not derived) so that the schema-2
/// `kernel` tag stays optional on read: trajectory files written at
/// schema 1 have no such field, and the derive would reject them.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRun {
    /// Human-chosen label identifying when/why this run was taken.
    pub label: String,
    /// Issue engine / scan-kernel variant the run was measured with
    /// (`"legacy"`, `"scalar-u64"`, `"simd"`, or `"auto"`). `None` on
    /// runs recorded before schema 2.
    pub kernel: Option<String>,
    /// Measured cases, in matrix order.
    pub entries: Vec<PerfEntry>,
    /// Optional end-to-end number: cold `repro all --scale 0.05` wall
    /// seconds, recorded out-of-band when available.
    pub repro_all_wall_secs: Option<f64>,
}

impl Serialize for PerfRun {
    fn to_value(&self) -> serde::Value {
        let mut pairs = vec![
            ("label".to_string(), self.label.to_value()),
            ("entries".to_string(), self.entries.to_value()),
            (
                "repro_all_wall_secs".to_string(),
                self.repro_all_wall_secs.to_value(),
            ),
        ];
        if let Some(k) = &self.kernel {
            pairs.push(("kernel".to_string(), k.to_value()));
        }
        serde::Value::Object(pairs)
    }
}

impl Deserialize for PerfRun {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("PerfRun: expected object"))?;
        Ok(PerfRun {
            label: String::from_value(serde::get_field(obj, "label")?)?,
            kernel: match v.get("kernel") {
                Some(val) => Option::from_value(val)?,
                None => None,
            },
            entries: Vec::from_value(serde::get_field(obj, "entries")?)?,
            repro_all_wall_secs: match v.get("repro_all_wall_secs") {
                Some(val) => Option::from_value(val)?,
                None => None,
            },
        })
    }
}

impl PerfRun {
    /// Look up a case by its [`PerfEntry::case_id`].
    pub fn entry(&self, case_id: &str) -> Option<&PerfEntry> {
        self.entries.iter().find(|e| e.case_id() == case_id)
    }

    /// Geometric mean of cycles/sec across all cases — the single number
    /// quoted in the perf table.
    pub fn geomean_cycles_per_sec(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let log_sum: f64 = self
            .entries
            .iter()
            .map(|e| e.cycles_per_sec.max(f64::MIN_POSITIVE).ln())
            .sum();
        (log_sum / self.entries.len() as f64).exp()
    }
}

/// The on-disk trajectory: an append-only list of [`PerfRun`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Layout version, for forward-compatible readers.
    pub schema: u32,
    /// Runs in chronological order; the last one is "current".
    pub runs: Vec<PerfRun>,
}

impl PerfReport {
    /// An empty report at the current schema version.
    pub fn new() -> PerfReport {
        PerfReport {
            schema: PERF_SCHEMA_VERSION,
            runs: Vec::new(),
        }
    }

    /// Read a report from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<PerfReport, Error> {
        let path = path.as_ref();
        let body = std::fs::read_to_string(path)
            .map_err(|e| Error::Io(format!("{}: {e}", path.display())))?;
        serde_json::from_str(&body).map_err(|e| Error::Serde(format!("{}: {e}", path.display())))
    }

    /// Write the report to `path` as pretty-printed JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        let path = path.as_ref();
        let body = serde_json::to_string_pretty(self).map_err(|e| Error::Serde(e.to_string()))?;
        std::fs::write(path, body + "\n").map_err(|e| Error::Io(format!("{}: {e}", path.display())))
    }

    /// The most recent run, if any.
    pub fn latest(&self) -> Option<&PerfRun> {
        self.runs.last()
    }

    /// Append `run` to the trajectory.
    pub fn push(&mut self, run: PerfRun) {
        self.runs.push(run);
    }
}

/// Knobs for [`run_perf`].
#[derive(Debug, Clone)]
pub struct PerfOptions {
    /// Label stored on the resulting [`PerfRun`].
    pub label: String,
    /// Simulated cycles in each timed window.
    pub window: u64,
    /// Timing samples per case; the fastest is kept (minimum wall time is
    /// the standard noise-robust estimator for a deterministic workload).
    pub samples: usize,
    /// Issue-engine override for the measured simulations. `None` keeps
    /// the process default (the SoA engine, or `SMT_SIM_ENGINE` if set).
    pub engine: Option<IssueEngine>,
    /// Scan-kernel override. `None` keeps the default (runtime AVX2
    /// detection). Forcing [`ScanKernel::Simd`] on a host without AVX2
    /// panics — gate on [`smt_sim::simd_available`].
    pub kernel: Option<ScanKernel>,
}

impl PerfOptions {
    /// Full-fidelity settings: 100k-cycle windows, best of 5.
    pub fn full() -> PerfOptions {
        PerfOptions {
            label: "local".to_string(),
            window: 100_000,
            samples: 5,
            engine: None,
            kernel: None,
        }
    }

    /// Quick settings for CI smoke runs: 20k-cycle windows, best of 3.
    pub fn quick() -> PerfOptions {
        PerfOptions {
            label: "quick".to_string(),
            window: 20_000,
            samples: 3,
            engine: None,
            kernel: None,
        }
    }

    /// Replace the label, builder-style.
    pub fn label(mut self, label: impl Into<String>) -> PerfOptions {
        self.label = label.into();
        self
    }

    /// The kernel tag recorded on runs measured with these options.
    pub fn kernel_name(&self) -> &'static str {
        match (self.engine, self.kernel) {
            (Some(IssueEngine::Legacy), _) => "legacy",
            (_, Some(ScanKernel::ScalarU64)) => "scalar-u64",
            (_, Some(ScanKernel::Simd)) => "simd",
            _ => "auto",
        }
    }
}

/// One row of the fixed measurement matrix.
struct PerfCase {
    bench: &'static str,
    machine: fn() -> MachineConfig,
    smt: SmtLevel,
    spec: fn() -> WorkloadSpec,
    /// Per-case issue-engine pin. Takes precedence over the sweep-wide
    /// [`PerfOptions::engine`] so one matrix can measure the same workload
    /// under both engines side by side (the trajectory's escape-hatch
    /// check: the legacy engine must stay alive and comparable).
    engine: Option<IssueEngine>,
}

/// The measurement matrix, mirroring `benches/simulator.rs`: EP across SMT
/// levels, a compute/memory/contended trio at SMT4, a two-chip machine,
/// and the contended case pinned to the legacy engine as a standing
/// cross-check of the SoA rewrite.
fn matrix() -> Vec<PerfCase> {
    fn p7() -> MachineConfig {
        MachineConfig::power7(1)
    }
    fn p7x2() -> MachineConfig {
        MachineConfig::power7(2)
    }
    vec![
        PerfCase {
            bench: "p7_ep",
            machine: p7,
            smt: SmtLevel::Smt1,
            spec: catalog::ep,
            engine: None,
        },
        PerfCase {
            bench: "p7_ep",
            machine: p7,
            smt: SmtLevel::Smt2,
            spec: catalog::ep,
            engine: None,
        },
        PerfCase {
            bench: "p7_ep",
            machine: p7,
            smt: SmtLevel::Smt4,
            spec: catalog::ep,
            engine: None,
        },
        PerfCase {
            bench: "p7_blackscholes",
            machine: p7,
            smt: SmtLevel::Smt4,
            spec: catalog::blackscholes,
            engine: None,
        },
        PerfCase {
            bench: "p7_stream",
            machine: p7,
            smt: SmtLevel::Smt4,
            spec: catalog::stream,
            engine: None,
        },
        PerfCase {
            bench: "p7_specjbb_contention",
            machine: p7,
            smt: SmtLevel::Smt4,
            spec: catalog::specjbb_contention,
            engine: None,
        },
        PerfCase {
            bench: "p7_specjbb_contention_legacy",
            machine: p7,
            smt: SmtLevel::Smt4,
            spec: catalog::specjbb_contention,
            engine: Some(IssueEngine::Legacy),
        },
        PerfCase {
            bench: "p7x2_mg",
            machine: p7x2,
            smt: SmtLevel::Smt4,
            spec: catalog::mg,
            engine: None,
        },
    ]
}

/// Measure the fixed matrix and return a labeled [`PerfRun`].
///
/// Each case builds a fresh simulation, warms it past cold start, then
/// times `opts.window` simulated cycles `opts.samples` times, keeping the
/// fastest sample. Workloads are deterministic, so the spread between
/// samples is pure host noise.
pub fn run_perf(opts: &PerfOptions) -> PerfRun {
    let mut entries = Vec::new();
    for case in matrix() {
        let mut best = f64::INFINITY;
        let mut cycles = 0;
        for _ in 0..opts.samples {
            let mut sim = Simulation::new(
                (case.machine)(),
                case.smt,
                SyntheticWorkload::new((case.spec)()),
            );
            if let Some(engine) = case.engine.or(opts.engine) {
                sim.set_issue_engine(engine);
            }
            if let Some(kernel) = opts.kernel {
                sim.set_scan_kernel(kernel);
            }
            sim.run_cycles(WARMUP_CYCLES);
            let start = Instant::now();
            cycles = sim.run_cycles(opts.window);
            let wall = start.elapsed().as_secs_f64();
            if wall < best {
                best = wall;
            }
        }
        let best = best.max(f64::MIN_POSITIVE);
        entries.push(PerfEntry {
            bench: case.bench.to_string(),
            smt: case.smt.ways(),
            cycles,
            wall_secs: best,
            cycles_per_sec: cycles as f64 / best,
        });
    }
    PerfRun {
        label: opts.label.clone(),
        kernel: Some(opts.kernel_name().to_string()),
        entries,
        repro_all_wall_secs: None,
    }
}

/// Phase breakdown of one matrix case from a profiled sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfiledCase {
    /// Case name, e.g. `p7_ep`.
    pub bench: String,
    /// Hardware threads per core during the measurement.
    pub smt: usize,
    /// Simulated cycles in the profiled window.
    pub cycles: u64,
    /// Core-steps timed (one per core per non-skipped cycle).
    pub steps: u64,
    /// `(phase, ticks)` rows in pipeline order.
    pub phase_ticks: Vec<(String, u64)>,
}

/// A full self-profiled sweep of the perf matrix: per-case phase tick
/// breakdowns plus, where the host PMU allows, hardware cycle/instruction
/// totals for the whole sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfiledRun {
    /// Run label (same convention as [`PerfRun::label`]).
    pub label: String,
    /// Scan-kernel variant the sweep ran with (see [`PerfOptions::kernel_name`]).
    pub kernel: String,
    /// Calibrated tick rate, for converting phase ticks to seconds.
    pub ticks_per_sec: f64,
    /// Per-case phase breakdowns.
    pub cases: Vec<ProfiledCase>,
    /// Phase totals summed across all cases.
    pub total: Vec<(String, u64)>,
    /// Hardware CPU cycles over the sweep (multiplex-scaled), if the PMU
    /// was readable; `None` on locked-down hosts.
    pub hw_cycles: Option<u64>,
    /// Hardware retired instructions over the sweep, if readable.
    pub hw_instructions: Option<u64>,
}

impl ProfiledRun {
    /// Render the sweep as folded stacks (`frame;frame;frame ticks`), the
    /// input format of flamegraph tooling: one line per case × phase under
    /// a common `smtsim` root.
    pub fn folded(&self) -> String {
        let mut s = String::new();
        for case in &self.cases {
            for (phase, ticks) in &case.phase_ticks {
                if *ticks > 0 {
                    let _ = writeln!(s, "smtsim;{}/smt{};{phase} {ticks}", case.bench, case.smt);
                }
            }
        }
        s
    }

    /// Render a human-readable table: per-case phase shares plus the
    /// sweep-wide totals and (when present) hardware counts.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "profiled run `{}` (kernel: {})", self.label, self.kernel);
        for case in &self.cases {
            let total: u64 = case.phase_ticks.iter().map(|(_, t)| *t).sum();
            let total = total.max(1);
            let _ = writeln!(
                s,
                "  {}/smt{}: {} cycles, {} core-steps",
                case.bench, case.smt, case.cycles, case.steps
            );
            for (phase, ticks) in &case.phase_ticks {
                let _ = writeln!(
                    s,
                    "    {phase:<12} {:>14} ticks  {:>5.1}%",
                    ticks,
                    *ticks as f64 / total as f64 * 100.0
                );
            }
        }
        let grand: u64 = self.total.iter().map(|(_, t)| *t).sum();
        let grand = grand.max(1);
        let _ = writeln!(s, "  sweep total ({:.2e} ticks/sec):", self.ticks_per_sec);
        for (phase, ticks) in &self.total {
            let _ = writeln!(
                s,
                "    {phase:<12} {:>14} ticks  {:>5.1}%  (~{:.3}s)",
                ticks,
                *ticks as f64 / grand as f64 * 100.0,
                *ticks as f64 / self.ticks_per_sec
            );
        }
        match (self.hw_cycles, self.hw_instructions) {
            (Some(c), Some(i)) => {
                let _ = writeln!(
                    s,
                    "  hardware: {c} cpu-cycles, {i} instructions ({:.2} IPC)",
                    i as f64 / c.max(1) as f64
                );
            }
            (Some(c), None) => {
                let _ = writeln!(s, "  hardware: {c} cpu-cycles");
            }
            (None, Some(i)) => {
                let _ = writeln!(s, "  hardware: {i} instructions");
            }
            (None, None) => {
                let _ = writeln!(s, "  hardware: PMU unavailable (perf_event_paranoid?)");
            }
        }
        s
    }
}

/// Run the matrix once per case under the phase profiler, producing a
/// [`ProfiledRun`]. Uses a single timed pass per case (no best-of-N —
/// phase *shares* are robust to host noise even when absolute rates are
/// not) and wraps the whole sweep in self-attached hardware counters
/// where the host permits.
pub fn run_perf_profiled(opts: &PerfOptions) -> ProfiledRun {
    let counters = smt_collect::SelfCounters::open();
    let mut cases = Vec::new();
    let mut total = smt_sim::PhaseProfile::default();
    for case in matrix() {
        let mut sim = Simulation::new(
            (case.machine)(),
            case.smt,
            SyntheticWorkload::new((case.spec)()),
        );
        if let Some(engine) = case.engine.or(opts.engine) {
            sim.set_issue_engine(engine);
        }
        if let Some(kernel) = opts.kernel {
            sim.set_scan_kernel(kernel);
        }
        sim.run_cycles(WARMUP_CYCLES);
        let mut prof = smt_sim::PhaseProfile::default();
        let cycles = sim.run_cycles_profiled(opts.window, &mut prof);
        total.merge(&prof);
        cases.push(ProfiledCase {
            bench: case.bench.to_string(),
            smt: case.smt.ways(),
            cycles,
            steps: prof.steps,
            phase_ticks: prof
                .phases()
                .iter()
                .map(|(label, t)| (label.to_string(), *t))
                .collect(),
        });
    }
    ProfiledRun {
        label: opts.label.clone(),
        kernel: opts.kernel_name().to_string(),
        ticks_per_sec: smt_sim::ticks_per_sec(),
        cases,
        total: total
            .phases()
            .iter()
            .map(|(label, t)| (label.to_string(), *t))
            .collect(),
        hw_cycles: counters.cycles().map(|c| c.value),
        hw_instructions: counters.instructions().map(|c| c.value),
    }
}

/// One case whose throughput regressed past the tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The case id (`bench/smtN`).
    pub case: String,
    /// Baseline cycles/sec (from the committed report).
    pub baseline: f64,
    /// Freshly measured cycles/sec.
    pub current: f64,
}

impl Regression {
    /// Fractional slowdown, e.g. `0.25` for a 25% throughput drop.
    pub fn slowdown(&self) -> f64 {
        1.0 - self.current / self.baseline
    }
}

/// Compare `current` against `baseline`, returning every case whose
/// cycles/sec dropped by more than `tolerance` (a fraction, e.g. `0.2`).
/// Cases present on only one side are ignored — the matrix is allowed to
/// grow between PRs.
pub fn check_regression(current: &PerfRun, baseline: &PerfRun, tolerance: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for b in &baseline.entries {
        if b.cycles_per_sec <= 0.0 {
            continue;
        }
        if let Some(c) = current.entry(&b.case_id()) {
            if c.cycles_per_sec < b.cycles_per_sec * (1.0 - tolerance) {
                out.push(Regression {
                    case: b.case_id(),
                    baseline: b.cycles_per_sec,
                    current: c.cycles_per_sec,
                });
            }
        }
    }
    out
}

/// Render a run as an aligned human-readable table.
pub fn format_run(run: &PerfRun) -> String {
    let mut s = String::new();
    match &run.kernel {
        Some(k) => {
            let _ = writeln!(s, "perf run `{}` (kernel: {k})", run.label);
        }
        None => {
            let _ = writeln!(s, "perf run `{}`", run.label);
        }
    }
    let _ = writeln!(
        s,
        "  {:<24} {:>4} {:>12} {:>12} {:>14}",
        "bench", "smt", "cycles", "wall (ms)", "cycles/sec"
    );
    for e in &run.entries {
        let _ = writeln!(
            s,
            "  {:<24} {:>4} {:>12} {:>12.3} {:>14.0}",
            e.bench,
            e.smt,
            e.cycles,
            e.wall_secs * 1e3,
            e.cycles_per_sec
        );
    }
    let _ = writeln!(
        s,
        "  geomean {:.0} cycles/sec over {} cases",
        run.geomean_cycles_per_sec(),
        run.entries.len()
    );
    if let Some(w) = run.repro_all_wall_secs {
        let _ = writeln!(s, "  repro all --scale 0.05 (cold): {w:.1}s");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bench: &str, smt: usize, rate: f64) -> PerfEntry {
        PerfEntry {
            bench: bench.to_string(),
            smt,
            cycles: 1000,
            wall_secs: 1000.0 / rate,
            cycles_per_sec: rate,
        }
    }

    fn run_with(rates: &[(&str, usize, f64)]) -> PerfRun {
        PerfRun {
            label: "test".to_string(),
            kernel: None,
            entries: rates.iter().map(|&(b, s, r)| entry(b, s, r)).collect(),
            repro_all_wall_secs: None,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = PerfReport::new();
        report.push(run_with(&[("p7_ep", 1, 1e6), ("p7_ep", 4, 5e5)]));
        report.runs[0].repro_all_wall_secs = Some(32.5);
        let dir = std::env::temp_dir().join("smt_perf_test_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sim.json");
        report.save(&path).unwrap();
        let loaded = PerfReport::load(&path).unwrap();
        assert_eq!(loaded, report);
        assert_eq!(loaded.latest().unwrap().entries.len(), 2);
    }

    #[test]
    fn regression_check_flags_only_past_tolerance() {
        let base = run_with(&[("a", 1, 1000.0), ("b", 4, 1000.0), ("gone", 2, 1000.0)]);
        let cur = run_with(&[("a", 1, 850.0), ("b", 4, 700.0), ("new", 2, 10.0)]);
        let regs = check_regression(&cur, &base, 0.2);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].case, "b/smt4");
        assert!((regs[0].slowdown() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn quick_run_measures_every_case() {
        let opts = PerfOptions {
            label: "unit".to_string(),
            window: 500,
            samples: 1,
            engine: None,
            kernel: None,
        };
        let run = run_perf(&opts);
        assert_eq!(run.entries.len(), matrix().len());
        for e in &run.entries {
            assert!(e.cycles > 0, "{} simulated nothing", e.bench);
            assert!(e.cycles_per_sec > 0.0);
        }
    }

    #[test]
    fn schema1_run_without_kernel_tag_loads() {
        // A trajectory file written before the `kernel` field existed.
        let body = r#"{
            "schema": 1,
            "runs": [{
                "label": "pr2-before",
                "entries": [{
                    "bench": "p7_ep", "smt": 1, "cycles": 1000,
                    "wall_secs": 0.01, "cycles_per_sec": 100000.0
                }],
                "repro_all_wall_secs": null
            }]
        }"#;
        let dir = std::env::temp_dir().join("smt_perf_test_schema1");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sim.json");
        std::fs::write(&path, body).unwrap();
        let report = PerfReport::load(&path).unwrap();
        assert_eq!(report.runs[0].kernel, None);
        assert_eq!(report.runs[0].entries[0].smt, 1);
        // Re-saving writes the current schema and keeps the run readable.
        report.save(&path).unwrap();
        let again = PerfReport::load(&path).unwrap();
        assert_eq!(again.runs, report.runs);
    }

    #[test]
    fn kernel_tag_round_trips() {
        let mut report = PerfReport::new();
        let mut run = run_with(&[("p7_ep", 1, 1e6)]);
        run.kernel = Some("scalar-u64".to_string());
        report.push(run);
        let dir = std::env::temp_dir().join("smt_perf_test_kernel_tag");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sim.json");
        report.save(&path).unwrap();
        let loaded = PerfReport::load(&path).unwrap();
        assert_eq!(loaded.runs[0].kernel.as_deref(), Some("scalar-u64"));
    }

    #[test]
    fn matrix_pins_the_legacy_cross_check_case() {
        let cases = matrix();
        let legacy = cases
            .iter()
            .find(|c| c.bench == "p7_specjbb_contention_legacy")
            .expect("legacy cross-check case present");
        assert_eq!(legacy.engine, Some(IssueEngine::Legacy));
        // Its twin runs the default engine so the trajectory records the
        // same workload both ways.
        let twin = cases
            .iter()
            .find(|c| c.bench == "p7_specjbb_contention")
            .expect("default-engine twin present");
        assert_eq!(twin.engine, None);
        assert_eq!(legacy.smt, twin.smt);
    }

    #[test]
    fn geomean_is_scale_stable() {
        let run = run_with(&[("a", 1, 100.0), ("b", 1, 400.0)]);
        assert!((run.geomean_cycles_per_sec() - 200.0).abs() < 1e-6);
    }
}
