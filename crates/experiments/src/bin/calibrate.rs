//! Calibration scratch tool: run the POWER7 suite and dump speedups vs
//! metric values so simulator/catalog parameters can be tuned.

use smt_experiments::{Engine, RunRequest};
use smt_sim::{Error, MachineConfig, SmtLevel};
use smt_workloads::catalog;

fn main() {
    if let Err(e) = run() {
        eprintln!("calibrate: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Error> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let machine = std::env::args().nth(2).unwrap_or_else(|| "p7".into());
    let (cfg, suite, levels): (_, _, Vec<SmtLevel>) = match machine.as_str() {
        "nhm" => (
            MachineConfig::nehalem(),
            catalog::nehalem_suite(),
            vec![SmtLevel::Smt1, SmtLevel::Smt2],
        ),
        "p7x2" => (
            MachineConfig::power7(2),
            catalog::power7_suite(),
            vec![SmtLevel::Smt1, SmtLevel::Smt2, SmtLevel::Smt4],
        ),
        _ => (
            MachineConfig::power7(1),
            catalog::power7_suite(),
            vec![SmtLevel::Smt1, SmtLevel::Smt2, SmtLevel::Smt4],
        ),
    };
    let top = *levels.last().unwrap_or(&SmtLevel::Smt1);
    let plan = RunRequest::on(cfg)
        .workloads(suite.into_iter().map(|s| s.scaled(scale)))
        .levels(levels)
        .plan()?;
    let t0 = std::time::Instant::now();
    let sweep = Engine::new().run(&plan);
    eprintln!(
        "suite ran in {:?} ({})",
        t0.elapsed(),
        sweep.metrics.summary()
    );
    for err in &sweep.errors {
        eprintln!("job failed: {err}");
    }
    println!(
        "{:<22} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7} {:>6}",
        "name", "s41", "s21", "metric4", "mixdev", "dheld", "scal", "l1mpki", "done"
    );
    for r in &sweep.results {
        let m4 = r.level(top)?;
        println!(
            "{:<22} {:>7.3} {:>7.3} {:>8.4} {:>8.4} {:>8.4} {:>8.3} {:>7.1} {:>6}",
            r.name,
            r.speedup(top, SmtLevel::Smt1)?,
            r.speedup(SmtLevel::Smt2, SmtLevel::Smt1)?,
            m4.factors.value(),
            m4.factors.mix_deviation,
            m4.factors.disp_held,
            m4.factors.scalability,
            m4.naive[0],
            r.levels.values().all(|l| l.completed),
        );
    }
    Ok(())
}
