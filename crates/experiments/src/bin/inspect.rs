//! Deep-dive tool: run one catalog benchmark at each SMT level and print
//! pipeline utilization details for simulator calibration.

use smt_sim::Workload;
use smt_sim::{MachineConfig, Simulation, SmtLevel};
use smt_workloads::{catalog, SyntheticWorkload};
use smtsm::{smtsm_factors, MetricSpec};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "EP".into());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let spec = catalog::power7_suite()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
        .scaled(scale);
    let cfg = MachineConfig::power7(1);
    let mspec = MetricSpec::for_arch(&cfg.arch);
    for smt in [SmtLevel::Smt1, SmtLevel::Smt2, SmtLevel::Smt4] {
        let w = SyntheticWorkload::new(spec.clone());
        let mut sim = Simulation::new(cfg.clone(), smt, w);
        let res = sim.run_until_finished(100_000_000);
        let cycles = sim.now().max(1);
        let perf = sim.workload().work_done() as f64 / cycles as f64;

        let w = SyntheticWorkload::new(spec.clone());
        let mut sim = Simulation::new(cfg.clone(), smt, w);
        sim.run_cycles((cycles / 5).clamp(1, 40_000));
        let m = sim.measure_window((cycles / 2).clamp(1, 80_000));
        let f = smtsm_factors(&mspec, &m);
        let cc = &m.cores;
        let ncores = 8.0;
        let agg = m.aggregate();
        println!(
            "{} {}: cycles={} perf={:.2} ipc={:.2} metric={:.4} (mix={:.3} dheld={:.4} scal={:.3})",
            spec.name,
            smt,
            cycles,
            perf,
            m.ipc(),
            f.value(),
            f.mix_deviation,
            f.disp_held,
            f.scalability
        );
        println!(
            "   disp_slots/cyc={:.2} issue_slots/cyc={:.2} lmq_rej/kcyc={:.1} l1mpki={:.1} l3mpki={:.1} spin%={:.1} br_mpki={:.1} done={}",
            cc.dispatch_slots_used as f64 / (cc.cycles as f64 / ncores) / ncores,
            cc.issue_slots_used as f64 / (cc.cycles as f64 / ncores) / ncores,
            cc.lmq_rejections as f64 * 1000.0 / (cc.cycles as f64 / ncores),
            m.l1_mpki(),
            agg.l3_misses as f64 * 1000.0 / agg.issued.max(1) as f64,
            agg.spin_instrs as f64 * 100.0 / agg.issued.max(1) as f64,
            m.branch_mpki(),
            res.completed,
        );
        let cf = m.class_fractions();
        println!(
            "   mix: L={:.2} S={:.2} B={:.2} CR={:.2} FX={:.2} VS={:.2}",
            cf[0], cf[1], cf[2], cf[3], cf[4], cf[5]
        );
    }
}
