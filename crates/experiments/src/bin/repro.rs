//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <artifact> [--scale S] [--json DIR] [--csv DIR]
//!      [--no-cache] [--cache-dir DIR] [--serial] [--verbose]
//!
//! artifacts:
//!   table1                      Table I (benchmark inventory)
//!   fig1 fig2 fig6 fig7 fig8 fig9 fig16 fig17   single-chip POWER7-like
//!   fig10 fig12                 Nehalem-like
//!   fig11                       single-chip, metric measured at SMT1
//!   fig13 fig14 fig15           two-chip POWER7-like (NUMA)
//!   success                     93%/86%/90% success-rate summary
//!   ablation                    Eq.-1 factor study (single-chip data)
//!   validate                    seed-robustness replicas (not in `all`)
//!   sched                       Section-V dynamic-selection demo
//!   autotune                    closed-loop stability-vs-regret study (not in `all`)
//!   perf                        simulator throughput harness (not in `all`)
//!   score                       corpus accuracy scorer (not in `all`)
//!   all                         everything above
//! ```
//!
//! `repro perf` measures the fixed simulator benchmark matrix and prints a
//! cycles/sec table. Extra flags: `--quick` (smaller windows, for CI),
//! `--label NAME` (run label), `--out FILE` (append the run to a
//! `BENCH_sim.json` trajectory), `--check FILE` (exit non-zero if any case
//! regressed more than `--tolerance`, default 0.2, vs. the file's latest
//! run), `--kernel auto|scalar|simd|legacy` (pin the issue-engine /
//! scan-kernel variant; `simd` exits cleanly on hosts without AVX2), and
//! `--flamegraph` (self-profile the matrix instead of timing it, printing
//! per-phase shares and writing `results/perf/profile-<label>.json` plus a
//! flamegraph-ready `flamegraph-<label>.folded`).
//!
//! `repro score` replays the committed benchmark corpus
//! (`results/corpus/manifest.json`) through the decision core and scores
//! the predictions against the manifest's simulate-every-level oracle
//! labels — the paper's 93%/86%/~90% headline as a regression-gated
//! number. Flags: `--manifest FILE`, `--tier s|m|l`, `--resume` (pick up
//! an interrupted run from the journal), `--limit N` (stop after N new
//! entries), `--label NAME` (record the run in the committed trajectory),
//! `--out DIR` (write `score.json` / `REPORT.md` / `trajectory.json`,
//! default `results/score`), `--no-out` (score without writing),
//! `--check FILE` (exit non-zero if accuracy fell more than `--tolerance`
//! points below the baseline, default 2.0, or below the 85% floor).
//!
//! `--scale` scales every workload's total work (default 0.3; 1.0 matches
//! the catalog's full sizes and takes several minutes per machine on one
//! host core). `--json DIR` additionally dumps each artifact as JSON.
//!
//! Measurements go through the batch engine with a result cache under
//! `results/cache/` (override with `--cache-dir`, disable with
//! `--no-cache`): the second run of the same artifact set reloads every
//! unchanged job from disk instead of re-simulating it.

use smt_experiments::figures;
use smt_experiments::sched_demo;
use smt_experiments::suite::{Machine, SuiteData};
use smt_experiments::{Engine, ProgressSink, ResultCache, StderrSink};
use smt_sim::Error;
use std::collections::HashMap;
use std::sync::Arc;

struct Args {
    artifact: String,
    scale: f64,
    json_dir: Option<String>,
    csv_dir: Option<String>,
    no_cache: bool,
    cache_dir: Option<String>,
    serial: bool,
    verbose: bool,
    quick: bool,
    label: Option<String>,
    perf_out: Option<String>,
    perf_check: Option<String>,
    tolerance: Option<f64>,
    kernel: Option<String>,
    flamegraph: bool,
    manifest: Option<String>,
    resume: bool,
    tier: Option<String>,
    limit: Option<usize>,
    no_out: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        artifact: String::from("all"),
        scale: 0.3,
        json_dir: None,
        csv_dir: None,
        no_cache: false,
        cache_dir: None,
        serial: false,
        verbose: false,
        quick: false,
        label: None,
        perf_out: None,
        perf_check: None,
        tolerance: None,
        kernel: None,
        flamegraph: false,
        manifest: None,
        resume: false,
        tier: None,
        limit: None,
        no_out: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale takes a number"));
            }
            "--json" => {
                args.json_dir = Some(it.next().unwrap_or_else(|| die("--json takes a directory")));
            }
            "--csv" => {
                args.csv_dir = Some(it.next().unwrap_or_else(|| die("--csv takes a directory")));
            }
            "--no-cache" => args.no_cache = true,
            "--cache-dir" => {
                args.cache_dir = Some(
                    it.next()
                        .unwrap_or_else(|| die("--cache-dir takes a directory")),
                );
            }
            "--serial" => args.serial = true,
            "--verbose" => args.verbose = true,
            "--quick" => args.quick = true,
            "--label" => {
                args.label = Some(it.next().unwrap_or_else(|| die("--label takes a name")));
            }
            "--out" => {
                args.perf_out = Some(it.next().unwrap_or_else(|| die("--out takes a file")));
            }
            "--check" => {
                args.perf_check = Some(it.next().unwrap_or_else(|| die("--check takes a file")));
            }
            "--tolerance" => {
                args.tolerance = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--tolerance takes a number")),
                );
            }
            "--manifest" => {
                args.manifest = Some(it.next().unwrap_or_else(|| die("--manifest takes a file")));
            }
            "--resume" => args.resume = true,
            "--tier" => {
                args.tier = Some(it.next().unwrap_or_else(|| die("--tier takes s|m|l")));
            }
            "--limit" => {
                args.limit = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--limit takes a count")),
                );
            }
            "--no-out" => args.no_out = true,
            "--kernel" => {
                args.kernel = Some(
                    it.next()
                        .unwrap_or_else(|| die("--kernel takes auto|scalar|simd|legacy")),
                );
            }
            "--flamegraph" => args.flamegraph = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: repro <artifact|all> [--scale S] [--json DIR] [--csv DIR] \
                     [--no-cache] [--cache-dir DIR] [--serial] [--verbose]\n\
                     artifacts: table1 fig1 fig2 fig6-17 success ablation placement sched \
                     autotune validate perf score"
                );
                std::process::exit(0);
            }
            other => args.artifact = other.to_string(),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

/// Progress sink printing only per-sweep summaries (the default; pass
/// `--verbose` for per-job lines via [`StderrSink`]).
struct SummarySink;

impl ProgressSink for SummarySink {
    fn on_event(&self, event: &smt_experiments::ProgressEvent<'_>) {
        if let smt_experiments::ProgressEvent::SweepFinished { metrics } = event {
            eprintln!("[engine] {}", metrics.summary());
        }
    }
}

/// Lazily collected per-machine datasets, all sharing one engine.
struct Data {
    scale: f64,
    engine: Engine,
    cache: HashMap<&'static str, SuiteData>,
}

impl Data {
    fn get(&mut self, machine: Machine) -> Result<&SuiteData, Error> {
        let key = match machine {
            Machine::Power7OneChip => "p7",
            Machine::Power7TwoChip => "p7x2",
            Machine::Nehalem => "nhm",
        };
        if !self.cache.contains_key(key) {
            eprintln!("[repro] collecting {} suite (scale {})...", key, self.scale);
            let t0 = std::time::Instant::now();
            let data = SuiteData::collect_with(machine, self.scale, &self.engine)?;
            eprintln!("[repro] ...done in {:?}", t0.elapsed());
            self.cache.insert(key, data);
        }
        Ok(&self.cache[key])
    }
}

fn dump_csv(dir: &Option<String>, name: &str, csv: &str) -> Result<(), Error> {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
        let path = format!("{dir}/{name}.csv");
        std::fs::write(&path, csv)?;
        eprintln!("[repro] wrote {path}");
    }
    Ok(())
}

fn dump_json<T: serde::Serialize>(
    dir: &Option<String>,
    name: &str,
    value: &T,
) -> Result<(), Error> {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
        let path = format!("{dir}/{name}.json");
        let body = serde_json::to_string_pretty(value).map_err(|e| Error::Serde(e.to_string()))?;
        std::fs::write(&path, body)?;
        eprintln!("[repro] wrote {path}");
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    if let Err(e) = run(&args) {
        eprintln!("repro: {e}");
        std::process::exit(1);
    }
}

/// `repro perf`: measure simulator throughput, optionally gate on a
/// committed baseline and append to the trajectory file.
fn run_perf_cmd(args: &Args) -> Result<(), Error> {
    use smt_experiments::perf;
    let mut opts = if args.quick {
        perf::PerfOptions::quick()
    } else {
        perf::PerfOptions::full()
    };
    if let Some(label) = &args.label {
        opts = opts.label(label.clone());
    }
    match args.kernel.as_deref() {
        None | Some("auto") => {}
        Some("legacy") => opts.engine = Some(smt_sim::IssueEngine::Legacy),
        Some("scalar") => opts.kernel = Some(smt_sim::ScanKernel::ScalarU64),
        Some("simd") => {
            if !smt_sim::simd_available() {
                eprintln!("[repro] skipping: --kernel simd requested but AVX2 is not available");
                return Ok(());
            }
            opts.kernel = Some(smt_sim::ScanKernel::Simd);
        }
        Some(other) => die(&format!(
            "unknown --kernel {other:?} (want auto|scalar|simd|legacy)"
        )),
    }
    if args.flamegraph {
        return run_perf_flamegraph(args, &opts);
    }
    eprintln!(
        "[repro] measuring simulator throughput ({} cycles/window, best of {})...",
        opts.window, opts.samples
    );
    let run = perf::run_perf(&opts);
    print!("{}", perf::format_run(&run));

    if let Some(check) = &args.perf_check {
        let tolerance = args.tolerance.unwrap_or(0.2);
        let baseline = perf::PerfReport::load(check)?;
        let base_run = baseline.latest().ok_or_else(|| {
            Error::InvalidMeasurement(format!("{check} contains no runs to check against"))
        })?;
        let regs = perf::check_regression(&run, base_run, tolerance);
        if regs.is_empty() {
            eprintln!(
                "[repro] perf check OK vs `{}` (tolerance {:.0}%)",
                base_run.label,
                tolerance * 100.0
            );
        } else {
            for r in &regs {
                eprintln!(
                    "[repro] REGRESSION {}: {:.0} -> {:.0} cycles/sec ({:.1}% slower)",
                    r.case,
                    r.baseline,
                    r.current,
                    r.slowdown() * 100.0
                );
            }
            std::process::exit(1);
        }
    }
    if let Some(out) = &args.perf_out {
        let mut report = if std::path::Path::new(out).exists() {
            perf::PerfReport::load(out)?
        } else {
            perf::PerfReport::new()
        };
        report.push(run);
        report.save(out)?;
        eprintln!("[repro] appended run to {out}");
    }
    Ok(())
}

/// `repro perf --flamegraph`: self-profile the matrix, print the phase
/// table, and write `results/perf/profile-<label>.json` plus a
/// flamegraph-ready `flamegraph-<label>.folded` (feed it to any
/// `flamegraph.pl`-compatible renderer).
fn run_perf_flamegraph(
    args: &Args,
    opts: &smt_experiments::perf::PerfOptions,
) -> Result<(), Error> {
    use smt_experiments::perf;
    eprintln!(
        "[repro] profiling simulator phases ({} cycles/window, kernel {})...",
        opts.window,
        opts.kernel_name()
    );
    let run = perf::run_perf_profiled(opts);
    print!("{}", run.render());

    let dir = std::path::Path::new("results/perf");
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("profile-{}.json", run.label));
    let body = serde_json::to_string_pretty(&run).map_err(|e| Error::Serde(e.to_string()))?;
    std::fs::write(&json_path, body)?;
    eprintln!("[repro] wrote {}", json_path.display());
    let folded_path = dir.join(format!("flamegraph-{}.folded", run.label));
    std::fs::write(&folded_path, run.folded())?;
    eprintln!("[repro] wrote {}", folded_path.display());

    if let Some(check) = &args.perf_check {
        eprintln!("[repro] note: --check {check} is ignored under --flamegraph (profiled runs are not throughput-comparable)");
    }
    Ok(())
}

/// `repro score`: replay the committed corpus through the decision core,
/// publish the `results/score/` artifacts, gate against the baseline.
fn run_score_cmd(args: &Args) -> Result<(), Error> {
    use smt_experiments::score::{self, ScoreCmd, ScoreOutcome};
    let mut cmd = ScoreCmd {
        resume: args.resume,
        limit: args.limit,
        label: args.label.clone(),
        ..ScoreCmd::default()
    };
    if let Some(m) = &args.manifest {
        cmd.manifest = std::path::PathBuf::from(m);
    }
    if let Some(t) = &args.tier {
        cmd.tier = Some(
            smt_corpus::SizeTier::from_name(t)
                .unwrap_or_else(|_| die(&format!("unknown --tier {t:?} (want s|m|l)"))),
        );
    }
    if !args.no_out {
        cmd.out_dir = Some(std::path::PathBuf::from(
            args.perf_out
                .clone()
                .unwrap_or_else(|| "results/score".to_string()),
        ));
    }
    cmd.check = args.perf_check.clone().map(std::path::PathBuf::from);
    if let Some(t) = args.tolerance {
        cmd.tolerance_points = t;
    }
    eprintln!(
        "[repro] scoring corpus {} (journal {}{})...",
        cmd.manifest.display(),
        cmd.journal.display(),
        if cmd.resume { ", resuming" } else { "" }
    );
    match score::run_score(&cmd)? {
        ScoreOutcome::Partial { done, remaining } => {
            eprintln!(
                "[repro] partial run: {done} entr{} journaled, {remaining} remaining — \
                 rerun with --resume to finish",
                if done == 1 { "y" } else { "ies" }
            );
        }
        ScoreOutcome::Complete(report) => {
            let traj_path = cmd
                .out_dir
                .as_deref()
                .unwrap_or_else(|| std::path::Path::new("results/score"))
                .join("trajectory.json");
            let trajectory = smt_corpus::ScoreTrajectory::load(&traj_path).unwrap_or_default();
            print!("{}", smt_corpus::render_markdown(&report, &trajectory));
            if let Some(dir) = &cmd.out_dir {
                eprintln!(
                    "[repro] wrote {}/score.json and {}/REPORT.md",
                    dir.display(),
                    dir.display()
                );
            }
            if cmd.check.is_some() {
                eprintln!(
                    "[repro] score check OK: overall {:.1}% (floor {:.0}%, tolerance {} points)",
                    report.summary.accuracy * 100.0,
                    score::MIN_OVERALL_ACCURACY * 100.0,
                    cmd.tolerance_points
                );
            }
        }
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), Error> {
    if args.artifact == "perf" {
        return run_perf_cmd(args);
    }
    if args.artifact == "score" {
        return run_score_cmd(args);
    }
    let sink: Arc<dyn ProgressSink> = if args.verbose {
        Arc::new(StderrSink)
    } else {
        Arc::new(SummarySink)
    };
    let mut engine = Engine::new().progress(sink).serial(args.serial);
    if !args.no_cache {
        let dir = args
            .cache_dir
            .clone()
            .map(std::path::PathBuf::from)
            .unwrap_or_else(ResultCache::default_dir);
        eprintln!("[repro] result cache at {}", dir.display());
        engine = engine.with_cache(ResultCache::new(dir));
    }
    let mut data = Data {
        scale: args.scale,
        engine,
        cache: HashMap::new(),
    };
    let wanted = |name: &str| args.artifact == "all" || args.artifact == name;
    let mut emitted = false;
    let t_run = std::time::Instant::now();

    if wanted("table1") {
        let t = figures::table1();
        println!("Table I: Benchmarks Evaluated\n\n{}", t.render());
        dump_csv(&args.csv_dir, "table1", &t.to_csv())?;
        emitted = true;
    }
    if wanted("fig1") {
        let f = figures::fig1(data.get(Machine::Power7OneChip)?)?;
        println!("{}", f.render());
        dump_json(&args.json_dir, "fig1", &f)?;
        emitted = true;
    }
    if wanted("fig2") {
        let f = figures::fig2(data.get(Machine::Power7OneChip)?)?;
        println!("{}", f.render());
        println!(
            "max |pearson r| across panels = {:.3} (paper: no usable correlation)\n",
            f.max_abs_correlation()
        );
        dump_json(&args.json_dir, "fig2", &f)?;
        emitted = true;
    }
    if wanted("fig7") {
        let f = figures::fig7(data.get(Machine::Power7OneChip)?)?;
        println!("{}", f.render());
        dump_json(&args.json_dir, "fig7", &f)?;
        emitted = true;
    }
    type ScatterGen = fn(&SuiteData) -> Result<smt_experiments::ScatterFigure, Error>;
    for (name, gen, machine) in [
        ("fig6", figures::fig6 as ScatterGen, Machine::Power7OneChip),
        ("fig8", figures::fig8 as ScatterGen, Machine::Power7OneChip),
        ("fig9", figures::fig9 as ScatterGen, Machine::Power7OneChip),
        (
            "fig11",
            figures::fig11 as ScatterGen,
            Machine::Power7OneChip,
        ),
        ("fig10", figures::fig10 as ScatterGen, Machine::Nehalem),
        ("fig12", figures::fig12 as ScatterGen, Machine::Nehalem),
        (
            "fig13",
            figures::fig13 as ScatterGen,
            Machine::Power7TwoChip,
        ),
        (
            "fig14",
            figures::fig14 as ScatterGen,
            Machine::Power7TwoChip,
        ),
        (
            "fig15",
            figures::fig15 as ScatterGen,
            Machine::Power7TwoChip,
        ),
    ] {
        if wanted(name) {
            let f = gen(data.get(machine)?)?;
            println!("{}", f.render());
            dump_json(&args.json_dir, name, &f)?;
            dump_csv(&args.csv_dir, name, &f.to_csv())?;
            emitted = true;
        }
    }
    if wanted("fig16") {
        let f6 = figures::fig6(data.get(Machine::Power7OneChip)?)?;
        let f = figures::fig16(&f6);
        println!("{}", f.render());
        dump_json(&args.json_dir, "fig16", &f)?;
        emitted = true;
    }
    if wanted("fig17") {
        let f6 = figures::fig6(data.get(Machine::Power7OneChip)?)?;
        let f = figures::fig17(&f6);
        println!("{}", f.render());
        dump_json(&args.json_dir, "fig17", &f)?;
        emitted = true;
    }
    if wanted("success") {
        let f6 = figures::fig6(data.get(Machine::Power7OneChip)?)?;
        let f10 = figures::fig10(data.get(Machine::Nehalem)?)?;
        let s = figures::success_rates(&f6, &f10);
        println!("{}", s.render());
        dump_json(&args.json_dir, "success", &s)?;
        emitted = true;
    }
    if wanted("ablation") {
        let p7 = data.get(Machine::Power7OneChip)?;
        let a = smt_experiments::ablation::run(
            p7,
            smt_sim::SmtLevel::Smt4,
            smt_sim::SmtLevel::Smt4,
            smt_sim::SmtLevel::Smt1,
        )?;
        println!("{}", a.render());
        dump_json(&args.json_dir, "ablation", &a)?;
        emitted = true;
    }
    if wanted("placement") {
        let p = smt_experiments::placement::run()?;
        println!("{}", p.render());
        dump_json(&args.json_dir, "placement", &p)?;
        emitted = true;
    }
    if args.artifact == "validate" {
        // Not part of "all" (it re-collects the suite several times).
        let v = smt_experiments::validation::run_with(3, data.scale, &data.engine)?;
        println!("{}", v.render());
        dump_json(&args.json_dir, "validate", &v)?;
        emitted = true;
    }
    if wanted("sched") {
        // Train the selector thresholds from the single-chip data.
        let (t_top, t_mid) = {
            let p7 = data.get(Machine::Power7OneChip)?;
            let f6 = figures::fig6(p7)?;
            let f8 = figures::fig8(p7)?;
            (f6.threshold, f8.threshold)
        };
        eprintln!("[repro] sched: trained thresholds top={t_top:.4} mid={t_mid:.4}");
        let demo = sched_demo::run(data.scale.min(0.2), t_top, t_mid, 2_000_000_000)?;
        println!("{}", demo.render());
        dump_json(&args.json_dir, "sched", &demo)?;
        emitted = true;
    }
    if args.artifact == "autotune" {
        // Not part of "all" (runs every scenario at every static level
        // plus the per-phase oracle sweep on top of the closed loop).
        let (t_top, t_mid) = {
            let p7 = data.get(Machine::Power7OneChip)?;
            let f6 = figures::fig6(p7)?;
            let f8 = figures::fig8(p7)?;
            (f6.threshold, f8.threshold)
        };
        eprintln!("[repro] autotune: trained thresholds top={t_top:.4} mid={t_mid:.4}");
        // The study needs phases spanning ~100 sampling windows each;
        // below scale 0.5 they get too short to re-detect and recall.
        let study =
            smt_experiments::autotune::run(data.scale.max(0.5), t_top, t_mid, 4_000_000_000)?;
        println!("{}", study.render());
        dump_json(&args.json_dir, "autotune", &study)?;
        let dir = std::path::Path::new("results/autotune");
        std::fs::create_dir_all(dir)?;
        let body = serde_json::to_string_pretty(&study).map_err(|e| Error::Serde(e.to_string()))?;
        std::fs::write(dir.join("study.json"), body)?;
        eprintln!("[repro] wrote results/autotune/study.json");
        emitted = true;
    }

    if !emitted {
        eprintln!("unknown artifact {:?}; try --help", args.artifact);
        std::process::exit(1);
    }
    eprintln!("[repro] total wall time {:?}", t_run.elapsed());
    Ok(())
}
