//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <artifact> [--scale S] [--json DIR]
//!
//! artifacts:
//!   table1                      Table I (benchmark inventory)
//!   fig1 fig2 fig6 fig7 fig8 fig9 fig16 fig17   single-chip POWER7-like
//!   fig10 fig12                 Nehalem-like
//!   fig11                       single-chip, metric measured at SMT1
//!   fig13 fig14 fig15           two-chip POWER7-like (NUMA)
//!   success                     93%/86%/90% success-rate summary
//!   ablation                    Eq.-1 factor study (single-chip data)
//!   validate                    seed-robustness replicas (not in `all`)
//!   sched                       Section-V dynamic-selection demo
//!   all                         everything above
//! ```
//!
//! `--scale` scales every workload's total work (default 0.3; 1.0 matches
//! the catalog's full sizes and takes several minutes per machine on one
//! host core). `--json DIR` additionally dumps each artifact as JSON.

use smt_experiments::figures;
use smt_experiments::sched_demo;
use smt_experiments::suite::{Machine, SuiteData};
use std::collections::HashMap;

struct Args {
    artifact: String,
    scale: f64,
    json_dir: Option<String>,
    csv_dir: Option<String>,
}

fn parse_args() -> Args {
    let mut artifact = String::from("all");
    let mut scale = 0.3;
    let mut json_dir = None;
    let mut csv_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale takes a number");
            }
            "--json" => {
                json_dir = Some(args.next().expect("--json takes a directory"));
            }
            "--csv" => {
                csv_dir = Some(args.next().expect("--csv takes a directory"));
            }
            "-h" | "--help" => {
                eprintln!("usage: repro <artifact|all> [--scale S] [--json DIR] [--csv DIR]");
                std::process::exit(0);
            }
            other => artifact = other.to_string(),
        }
    }
    Args { artifact, scale, json_dir, csv_dir }
}

fn dump_csv(dir: &Option<String>, name: &str, csv: &str) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{name}.csv");
        std::fs::write(&path, csv).expect("write csv");
        eprintln!("[repro] wrote {path}");
    }
}

/// Lazily collected per-machine datasets.
struct Data {
    scale: f64,
    cache: HashMap<&'static str, SuiteData>,
}

impl Data {
    fn get(&mut self, machine: Machine) -> &SuiteData {
        let key = match machine {
            Machine::Power7OneChip => "p7",
            Machine::Power7TwoChip => "p7x2",
            Machine::Nehalem => "nhm",
        };
        if !self.cache.contains_key(key) {
            eprintln!("[repro] collecting {} suite (scale {})...", key, self.scale);
            let t0 = std::time::Instant::now();
            let data = SuiteData::collect(machine, self.scale);
            eprintln!("[repro] ...done in {:?}", t0.elapsed());
            self.cache.insert(key, data);
        }
        &self.cache[key]
    }
}

fn dump_json<T: serde::Serialize>(dir: &Option<String>, name: &str, value: &T) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{name}.json");
        let body = serde_json::to_string_pretty(value).expect("serialize");
        std::fs::write(&path, body).expect("write json");
        eprintln!("[repro] wrote {path}");
    }
}

fn main() {
    let args = parse_args();
    let mut data = Data { scale: args.scale, cache: HashMap::new() };
    let wanted = |name: &str| args.artifact == "all" || args.artifact == name;
    let mut emitted = false;

    if wanted("table1") {
        let t = figures::table1();
        println!("Table I: Benchmarks Evaluated\n\n{}", t.render());
        dump_csv(&args.csv_dir, "table1", &t.to_csv());
        emitted = true;
    }
    if wanted("fig1") {
        let f = figures::fig1(data.get(Machine::Power7OneChip));
        println!("{}", f.render());
        dump_json(&args.json_dir, "fig1", &f);
        emitted = true;
    }
    if wanted("fig2") {
        let f = figures::fig2(data.get(Machine::Power7OneChip));
        println!("{}", f.render());
        println!(
            "max |pearson r| across panels = {:.3} (paper: no usable correlation)\n",
            f.max_abs_correlation()
        );
        dump_json(&args.json_dir, "fig2", &f);
        emitted = true;
    }
    if wanted("fig7") {
        let f = figures::fig7(data.get(Machine::Power7OneChip));
        println!("{}", f.render());
        dump_json(&args.json_dir, "fig7", &f);
        emitted = true;
    }
    type ScatterGen = fn(&SuiteData) -> smt_experiments::ScatterFigure;
    for (name, gen) in [
        ("fig6", figures::fig6 as ScatterGen),
        ("fig8", figures::fig8 as ScatterGen),
        ("fig9", figures::fig9 as ScatterGen),
        ("fig11", figures::fig11 as ScatterGen),
    ] {
        if wanted(name) {
            let f = gen(data.get(Machine::Power7OneChip));
            println!("{}", f.render());
            dump_json(&args.json_dir, name, &f);
            dump_csv(&args.csv_dir, name, &f.to_csv());
            emitted = true;
        }
    }
    for (name, gen) in [
        ("fig10", figures::fig10 as ScatterGen),
        ("fig12", figures::fig12 as ScatterGen),
    ] {
        if wanted(name) {
            let f = gen(data.get(Machine::Nehalem));
            println!("{}", f.render());
            dump_json(&args.json_dir, name, &f);
            dump_csv(&args.csv_dir, name, &f.to_csv());
            emitted = true;
        }
    }
    for (name, gen) in [
        ("fig13", figures::fig13 as ScatterGen),
        ("fig14", figures::fig14 as ScatterGen),
        ("fig15", figures::fig15 as ScatterGen),
    ] {
        if wanted(name) {
            let f = gen(data.get(Machine::Power7TwoChip));
            println!("{}", f.render());
            dump_json(&args.json_dir, name, &f);
            dump_csv(&args.csv_dir, name, &f.to_csv());
            emitted = true;
        }
    }
    if wanted("fig16") {
        let f6 = figures::fig6(data.get(Machine::Power7OneChip));
        let f = figures::fig16(&f6);
        println!("{}", f.render());
        dump_json(&args.json_dir, "fig16", &f);
        emitted = true;
    }
    if wanted("fig17") {
        let f6 = figures::fig6(data.get(Machine::Power7OneChip));
        let f = figures::fig17(&f6);
        println!("{}", f.render());
        dump_json(&args.json_dir, "fig17", &f);
        emitted = true;
    }
    if wanted("success") {
        let f6 = figures::fig6(data.get(Machine::Power7OneChip));
        let f10 = figures::fig10(data.get(Machine::Nehalem));
        let s = figures::success_rates(&f6, &f10);
        println!("{}", s.render());
        dump_json(&args.json_dir, "success", &s);
        emitted = true;
    }
    if wanted("ablation") {
        let p7 = data.get(Machine::Power7OneChip);
        let a = smt_experiments::ablation::run(
            p7,
            smt_sim::SmtLevel::Smt4,
            smt_sim::SmtLevel::Smt4,
            smt_sim::SmtLevel::Smt1,
        );
        println!("{}", a.render());
        dump_json(&args.json_dir, "ablation", &a);
        emitted = true;
    }
    if args.artifact == "validate" {
        // Not part of "all" (it re-collects the suite several times).
        let v = smt_experiments::validation::run(3, data.scale);
        println!("{}", v.render());
        dump_json(&args.json_dir, "validate", &v);
        emitted = true;
    }
    if wanted("sched") {
        // Train the selector thresholds from the single-chip data.
        let (t_top, t_mid) = {
            let p7 = data.get(Machine::Power7OneChip);
            let f6 = figures::fig6(p7);
            let f8 = figures::fig8(p7);
            (f6.threshold, f8.threshold)
        };
        eprintln!("[repro] sched: trained thresholds top={t_top:.4} mid={t_mid:.4}");
        let demo = sched_demo::run(data.scale.min(0.2), t_top, t_mid, 2_000_000_000);
        println!("{}", demo.render());
        dump_json(&args.json_dir, "sched", &demo);
        emitted = true;
    }

    if !emitted {
        eprintln!("unknown artifact {:?}; try --help", args.artifact);
        std::process::exit(1);
    }
}
