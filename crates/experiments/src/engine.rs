//! The batch experiment engine.
//!
//! Every experiment in this crate reduces to the same shape: a matrix of
//! (machine, workload, SMT level) jobs, each measured with the two-pass
//! protocol in [`crate::runner`]. The engine owns that shape end to end:
//!
//! - a [`RunRequest`] describes the matrix and validates into a
//!   [`RunPlan`] (invalid machines, workloads, levels, or protocol
//!   constants are rejected up front with [`Error`], before any cycles
//!   are burned);
//! - [`Engine::run`] executes the plan across host cores with per-job
//!   fault isolation — a job that panics or hits the cycle cap becomes a
//!   structured [`JobError`] in the sweep instead of poisoning the other
//!   jobs;
//! - an optional [`ResultCache`] satisfies unchanged jobs from disk, so
//!   re-running a sweep only pays for what changed;
//! - a [`ProgressSink`] observes per-job completion and the final
//!   [`EngineMetrics`].

use crate::cache::ResultCache;
use crate::progress::{JobOutcome, NullSink, ProgressEvent, ProgressSink};
use crate::runner::{measure_level, BenchResult, LevelMeasurement, ProtocolConfig};
use rayon::prelude::*;
use smt_sim::{Error, MachineConfig, SmtLevel};
use smt_workloads::WorkloadSpec;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A description of one experiment sweep: which machine, which
/// benchmarks, which SMT levels, under which protocol constants.
///
/// Build one with the fluent methods, then call [`RunRequest::plan`] to
/// validate it into an executable [`RunPlan`].
#[derive(Debug, Clone)]
pub struct RunRequest {
    machine: MachineConfig,
    benchmarks: Vec<WorkloadSpec>,
    levels: Vec<SmtLevel>,
    protocol: ProtocolConfig,
}

impl RunRequest {
    /// Start a request on `machine` — the head of the fluent chain:
    /// `RunRequest::on(machine).workloads(..).levels(..).protocol(..)`.
    pub fn on(machine: MachineConfig) -> RunRequest {
        RunRequest {
            machine,
            benchmarks: Vec::new(),
            levels: Vec::new(),
            protocol: ProtocolConfig::default(),
        }
    }

    /// Thin alias of [`RunRequest::on`], kept for one release.
    pub fn new(machine: MachineConfig) -> RunRequest {
        RunRequest::on(machine)
    }

    /// Add one benchmark.
    pub fn benchmark(mut self, spec: WorkloadSpec) -> RunRequest {
        self.benchmarks.push(spec);
        self
    }

    /// Add a batch of workloads to measure.
    pub fn workloads(mut self, specs: impl IntoIterator<Item = WorkloadSpec>) -> RunRequest {
        self.benchmarks.extend(specs);
        self
    }

    /// Thin alias of [`RunRequest::workloads`], kept for one release.
    pub fn benchmarks(self, specs: impl IntoIterator<Item = WorkloadSpec>) -> RunRequest {
        self.workloads(specs)
    }

    /// Set the SMT levels every benchmark is measured at.
    pub fn levels(mut self, levels: impl IntoIterator<Item = SmtLevel>) -> RunRequest {
        self.levels = levels.into_iter().collect();
        self
    }

    /// Use every SMT level the machine supports.
    pub fn all_levels(mut self) -> RunRequest {
        self.levels = self.machine.smt_levels();
        self
    }

    /// Override the measurement-protocol constants (part of the cache
    /// key: changing them re-measures every job).
    pub fn protocol(mut self, protocol: ProtocolConfig) -> RunRequest {
        self.protocol = protocol;
        self
    }

    /// Validate the request into an executable [`RunPlan`].
    ///
    /// Checks the machine, every workload spec, the protocol constants,
    /// and that every requested level is one the machine supports, so
    /// [`Engine::run`] never trips the simulator's internal assertions on
    /// malformed input.
    pub fn plan(self) -> Result<RunPlan, Error> {
        self.machine.validate()?;
        self.protocol.validate()?;
        if self.benchmarks.is_empty() {
            return Err(Error::InvalidWorkload("request has no benchmarks".into()));
        }
        if self.levels.is_empty() {
            return Err(Error::InvalidMachine("request has no SMT levels".into()));
        }
        let mut seen_names = std::collections::BTreeSet::new();
        for spec in &self.benchmarks {
            spec.validate()?;
            if !seen_names.insert(spec.name.clone()) {
                return Err(Error::InvalidWorkload(format!(
                    "duplicate benchmark name `{}` in request",
                    spec.name
                )));
            }
        }
        let mut seen_levels = std::collections::BTreeSet::new();
        for &level in &self.levels {
            if level.ways() > self.machine.arch.max_smt.ways() {
                return Err(Error::InvalidMachine(format!(
                    "machine `{}` supports up to {}, requested {level}",
                    self.machine.arch.name, self.machine.arch.max_smt
                )));
            }
            if !seen_levels.insert(level) {
                return Err(Error::InvalidMachine(format!(
                    "duplicate level {level} in request"
                )));
            }
        }
        let jobs: Vec<JobSpec> = (0..self.benchmarks.len())
            .flat_map(|bench| {
                self.levels
                    .iter()
                    .map(move |&level| JobSpec { bench, level })
            })
            .collect();
        Ok(RunPlan {
            machine: self.machine,
            benchmarks: self.benchmarks,
            levels: self.levels,
            protocol: self.protocol,
            jobs,
        })
    }
}

/// One (benchmark, level) cell of the job matrix.
#[derive(Debug, Clone, Copy)]
struct JobSpec {
    bench: usize,
    level: SmtLevel,
}

/// A validated, executable job matrix. Produced by [`RunRequest::plan`].
#[derive(Debug, Clone)]
pub struct RunPlan {
    machine: MachineConfig,
    benchmarks: Vec<WorkloadSpec>,
    levels: Vec<SmtLevel>,
    protocol: ProtocolConfig,
    jobs: Vec<JobSpec>,
}

impl RunPlan {
    /// Total number of jobs (benchmarks × levels).
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The machine every job runs on.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The benchmarks in the plan, in request order.
    pub fn benchmarks(&self) -> &[WorkloadSpec] {
        &self.benchmarks
    }

    /// The SMT levels every benchmark is measured at.
    pub fn levels(&self) -> &[SmtLevel] {
        &self.levels
    }

    /// The protocol constants the jobs run under.
    pub fn protocol(&self) -> &ProtocolConfig {
        &self.protocol
    }
}

/// Why one job of a sweep produced no usable measurement.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The job panicked (simulator assertion, arithmetic bug, ...); the
    /// panic was caught on the worker and the rest of the sweep ran on.
    Panicked {
        /// Benchmark whose job panicked.
        benchmark: String,
        /// SMT level of the job.
        level: SmtLevel,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The run hit `max_run_cycles` without finishing. The partial
    /// measurement is preserved for diagnosis but is not entered into
    /// the result set or the cache.
    Incomplete {
        /// Benchmark whose run was capped.
        benchmark: String,
        /// SMT level of the job.
        level: SmtLevel,
        /// What was measured before the cap.
        measurement: Box<LevelMeasurement>,
    },
}

impl JobError {
    /// The benchmark this error belongs to.
    pub fn benchmark(&self) -> &str {
        match self {
            JobError::Panicked { benchmark, .. } | JobError::Incomplete { benchmark, .. } => {
                benchmark
            }
        }
    }

    /// The SMT level of the failed job.
    pub fn level(&self) -> SmtLevel {
        match self {
            JobError::Panicked { level, .. } | JobError::Incomplete { level, .. } => *level,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked {
                benchmark,
                level,
                message,
            } => {
                write!(f, "`{benchmark}` @ {level} panicked: {message}")
            }
            JobError::Incomplete {
                benchmark,
                level,
                measurement,
            } => write!(
                f,
                "`{benchmark}` @ {level} hit the cycle cap after {} cycles",
                measurement.cycles
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// Counters describing how a sweep was satisfied.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    /// Jobs in the plan.
    pub jobs_total: usize,
    /// Jobs simulated fresh (including failed attempts).
    pub jobs_run: usize,
    /// Jobs satisfied from the result cache.
    pub cache_hits: usize,
    /// Jobs that produced a [`JobError`].
    pub jobs_failed: usize,
    /// Cache entries that could not be read or written (each such job
    /// was simply recomputed / left uncached).
    pub cache_errors: usize,
    /// Simulated cycles across all fresh first-pass runs.
    pub cycles_simulated: u64,
    /// Wall time of the whole sweep.
    pub wall: Duration,
}

impl EngineMetrics {
    /// One human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs: {} run, {} cached, {} failed; {:.2e} cycles simulated in {:.2?}",
            self.jobs_total,
            self.jobs_run,
            self.cache_hits,
            self.jobs_failed,
            self.cycles_simulated as f64,
            self.wall
        )
    }
}

/// Everything a sweep produced.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One entry per benchmark in plan order. A benchmark whose job
    /// failed at some level still appears here with the levels that
    /// succeeded.
    pub results: Vec<BenchResult>,
    /// Structured errors for the jobs that failed, in job order.
    pub errors: Vec<JobError>,
    /// How the sweep was satisfied.
    pub metrics: EngineMetrics,
}

impl SweepResult {
    /// `true` when every job produced a completed measurement.
    pub fn all_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Executes [`RunPlan`]s: parallel or serial, cached or not, silent or
/// reporting progress.
pub struct Engine {
    cache: Option<ResultCache>,
    sink: Arc<dyn ProgressSink>,
    serial: bool,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// A parallel, uncached, silent engine.
    pub fn new() -> Engine {
        Engine {
            cache: None,
            sink: Arc::new(NullSink),
            serial: false,
        }
    }

    /// An engine caching under [`ResultCache::default_dir`]
    /// (`results/cache/`).
    pub fn cached() -> Engine {
        Engine::new().with_cache(ResultCache::new(ResultCache::default_dir()))
    }

    /// Cache results under `dir` — fluent shorthand for
    /// `with_cache(ResultCache::new(dir))`.
    pub fn cache_dir(self, dir: impl Into<std::path::PathBuf>) -> Engine {
        self.with_cache(ResultCache::new(dir.into()))
    }

    /// Attach a result cache.
    pub fn with_cache(mut self, cache: ResultCache) -> Engine {
        self.cache = Some(cache);
        self
    }

    /// Detach the result cache (every job simulates fresh).
    pub fn without_cache(mut self) -> Engine {
        self.cache = None;
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Attach a progress sink (fluent form; wraps the sink for the
    /// worker threads).
    pub fn sink(mut self, sink: impl ProgressSink + 'static) -> Engine {
        self.sink = Arc::new(sink);
        self
    }

    /// Attach an already-shared progress sink. Thin alias of
    /// [`Engine::sink`] for callers that keep their own handle.
    pub fn progress(mut self, sink: Arc<dyn ProgressSink>) -> Engine {
        self.sink = sink;
        self
    }

    /// Force single-threaded execution (jobs run in plan order).
    /// Measurements are deterministic either way; serial mode exists for
    /// tests that prove it and for debugging with ordered output.
    pub fn serial(mut self, serial: bool) -> Engine {
        self.serial = serial;
        self
    }

    /// Execute every job of `plan`, assembling per-benchmark results.
    ///
    /// Never panics on job failure: each job runs under
    /// [`catch_unwind`], and runs that hit the cycle cap are reported as
    /// [`JobError::Incomplete`]. The sweep itself is infallible — in the
    /// worst case every job fails and `results` holds empty level maps.
    pub fn run(&self, plan: &RunPlan) -> SweepResult {
        let t0 = Instant::now();
        let jobs_total = plan.jobs.len();
        self.sink
            .on_event(&ProgressEvent::SweepStarted { jobs_total });
        let done = AtomicUsize::new(0);

        let execute = |job: &JobSpec| -> JobResult {
            let jt0 = Instant::now();
            let spec = &plan.benchmarks[job.bench];
            let mut cache_errors = 0usize;
            let key = self
                .cache
                .as_ref()
                .map(|_| ResultCache::key(&plan.machine, spec, job.level, &plan.protocol));

            let mut cached = None;
            if let (Some(cache), Some(key)) = (&self.cache, &key) {
                match cache.load(key) {
                    Ok(hit) => cached = hit,
                    Err(_) => cache_errors += 1, // unreadable entry: recompute
                }
            }

            let (outcome, payload) = match cached {
                Some(m) => (JobOutcome::CacheHit, Ok(m)),
                None => {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        measure_level(&plan.machine, spec, job.level, &plan.protocol)
                    }));
                    match run {
                        Ok(m) if m.completed => {
                            if let (Some(cache), Some(key)) = (&self.cache, &key) {
                                if cache.store(key, &m).is_err() {
                                    cache_errors += 1;
                                }
                            }
                            (JobOutcome::Computed, Ok(m))
                        }
                        Ok(m) => (
                            JobOutcome::Failed,
                            Err(JobError::Incomplete {
                                benchmark: spec.name.clone(),
                                level: job.level,
                                measurement: Box::new(m),
                            }),
                        ),
                        Err(payload) => (
                            JobOutcome::Failed,
                            Err(JobError::Panicked {
                                benchmark: spec.name.clone(),
                                level: job.level,
                                message: panic_message(&payload),
                            }),
                        ),
                    }
                }
            };

            let jobs_done = done.fetch_add(1, Ordering::Relaxed) + 1;
            self.sink.on_event(&ProgressEvent::JobFinished {
                benchmark: &spec.name,
                level: job.level,
                outcome,
                jobs_done,
                jobs_total,
                elapsed: jt0.elapsed(),
            });
            JobResult {
                bench: job.bench,
                outcome,
                payload,
                cache_errors,
            }
        };

        let outcomes: Vec<JobResult> = if self.serial {
            plan.jobs.iter().map(execute).collect()
        } else {
            plan.jobs.par_iter().map(execute).collect()
        };

        let mut metrics = EngineMetrics {
            jobs_total,
            ..EngineMetrics::default()
        };
        let mut levels: Vec<BTreeMap<SmtLevel, LevelMeasurement>> =
            plan.benchmarks.iter().map(|_| BTreeMap::new()).collect();
        let mut errors = Vec::new();
        for job in outcomes {
            metrics.cache_errors += job.cache_errors;
            match job.outcome {
                JobOutcome::CacheHit => metrics.cache_hits += 1,
                JobOutcome::Computed => metrics.jobs_run += 1,
                JobOutcome::Failed => {
                    metrics.jobs_run += 1;
                    metrics.jobs_failed += 1;
                }
            }
            match job.payload {
                Ok(m) => {
                    if job.outcome == JobOutcome::Computed {
                        metrics.cycles_simulated += m.cycles;
                    }
                    levels[job.bench].insert(m.smt, m);
                }
                Err(e) => {
                    if let JobError::Incomplete { measurement, .. } = &e {
                        metrics.cycles_simulated += measurement.cycles;
                    }
                    errors.push(e);
                }
            }
        }
        let results: Vec<BenchResult> = plan
            .benchmarks
            .iter()
            .zip(levels)
            .map(|(spec, levels)| BenchResult {
                name: spec.name.clone(),
                levels,
            })
            .collect();
        metrics.wall = t0.elapsed();
        self.sink
            .on_event(&ProgressEvent::SweepFinished { metrics: &metrics });
        SweepResult {
            results,
            errors,
            metrics,
        }
    }
}

/// Worker-side record for one finished job.
struct JobResult {
    bench: usize,
    outcome: JobOutcome,
    payload: Result<LevelMeasurement, JobError>,
    cache_errors: usize,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::catalog;

    fn tiny_plan() -> RunPlan {
        RunRequest::new(MachineConfig::generic(2))
            .benchmarks([catalog::ep().scaled(0.01), catalog::ssca2().scaled(0.01)])
            .levels([SmtLevel::Smt1, SmtLevel::Smt2])
            .plan()
            .unwrap()
    }

    #[test]
    fn plan_validates_inputs() {
        let machine = MachineConfig::generic(2);
        assert!(matches!(
            RunRequest::new(machine.clone())
                .levels([SmtLevel::Smt1])
                .plan(),
            Err(Error::InvalidWorkload(_))
        ));
        assert!(matches!(
            RunRequest::new(machine.clone())
                .benchmark(catalog::ep())
                .plan(),
            Err(Error::InvalidMachine(_))
        ));
        // generic machines are SMT2: SMT4 jobs must be rejected at plan
        // time, not blow up inside the simulator.
        assert!(matches!(
            RunRequest::new(machine.clone())
                .benchmark(catalog::ep())
                .levels([SmtLevel::Smt4])
                .plan(),
            Err(Error::InvalidMachine(_))
        ));
        let dup = RunRequest::new(machine)
            .benchmarks([catalog::ep(), catalog::ep()])
            .levels([SmtLevel::Smt1])
            .plan();
        assert!(matches!(dup, Err(Error::InvalidWorkload(_))));
    }

    #[test]
    fn sweep_covers_the_matrix() {
        let plan = tiny_plan();
        assert_eq!(plan.job_count(), 4);
        let sweep = Engine::new().run(&plan);
        assert!(sweep.all_ok(), "errors: {:?}", sweep.errors);
        assert_eq!(sweep.results.len(), 2);
        assert_eq!(sweep.results[0].name, "EP");
        for r in &sweep.results {
            assert_eq!(r.levels.len(), 2);
        }
        assert_eq!(sweep.metrics.jobs_run, 4);
        assert_eq!(sweep.metrics.cache_hits, 0);
        assert!(sweep.metrics.cycles_simulated > 0);
    }

    #[test]
    fn all_levels_uses_machine_support() {
        let plan = RunRequest::new(MachineConfig::generic(2))
            .benchmark(catalog::ep().scaled(0.01))
            .all_levels()
            .plan()
            .unwrap();
        assert_eq!(plan.levels(), &[SmtLevel::Smt1, SmtLevel::Smt2]);
    }
}
