//! Metric-factor ablation experiment.
//!
//! DESIGN.md asks whether all three factors of Eq. 1 earn their place.
//! This experiment retrains a Gini threshold for the full product and for
//! each factor-removed variant over the same suite data, and reports the
//! resulting prediction accuracies side by side — the quantitative version
//! of the paper's Section II rationale (and of Fig. 2's message that the
//! mix alone, like any single naive signal, is not enough).

use crate::suite::SuiteData;
use serde::{Deserialize, Serialize};
use smt_sim::{Error, SmtLevel};
use smt_stats::classify::SpeedupCase;
use smt_stats::table::{fnum, Table};
use smtsm::{SmtsmFactors, ThresholdPredictor};

/// One metric variant's result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant name.
    pub variant: String,
    /// Gini-trained threshold for this variant.
    pub threshold: f64,
    /// Prediction accuracy at that threshold.
    pub accuracy: f64,
    /// Benchmarks mispredicted.
    pub mispredicted: Vec<String>,
}

/// The full ablation table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablation {
    /// Rows, full metric first.
    pub rows: Vec<AblationRow>,
    /// Speedup pair the labels came from.
    pub hi: SmtLevel,
    /// Baseline (lower) level.
    pub lo: SmtLevel,
}

/// A named metric-variant extractor, e.g. `("DispHeld only", |f| f.disp_held)`.
pub type Variant = (&'static str, fn(&SmtsmFactors) -> f64);

/// The variants studied: name + extractor.
pub fn variants() -> Vec<Variant> {
    vec![
        ("full metric", |f| f.value()),
        ("mix deviation only", |f| f.mix_only()),
        ("without DispHeld", |f| f.value_without_disp_held()),
        ("without scalability", |f| f.value_without_scalability()),
        ("DispHeld only", |f| f.disp_held),
        ("scalability only", |f| f.scalability),
    ]
}

/// Run the ablation over suite data (metric measured at `metric_at`,
/// labels from the `hi`/`lo` speedup).
pub fn run(
    data: &SuiteData,
    metric_at: SmtLevel,
    hi: SmtLevel,
    lo: SmtLevel,
) -> Result<Ablation, Error> {
    let rows = variants()
        .into_iter()
        .map(|(name, extract)| {
            let cases: Vec<SpeedupCase> = data
                .results
                .iter()
                .map(|r| {
                    let f = &r.level(metric_at)?.factors;
                    Ok(SpeedupCase::new(
                        r.name.clone(),
                        extract(f),
                        r.speedup(hi, lo)?,
                    ))
                })
                .collect::<Result<Vec<_>, Error>>()?;
            let p = ThresholdPredictor::train_gini(&cases);
            Ok(AblationRow {
                variant: name.to_string(),
                threshold: p.threshold,
                accuracy: p.accuracy(&cases),
                mispredicted: smt_stats::classify::mispredicted(&cases, p.threshold)
                    .into_iter()
                    .map(String::from)
                    .collect(),
            })
        })
        .collect::<Result<Vec<_>, Error>>()?;
    Ok(Ablation { rows, hi, lo })
}

impl Ablation {
    /// Accuracy of the full metric (first row).
    pub fn full_accuracy(&self) -> f64 {
        self.rows[0].accuracy
    }

    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["metric variant", "threshold", "accuracy", "errors"]);
        for r in &self.rows {
            t.row(vec![
                r.variant.clone(),
                fnum(r.threshold, 4),
                format!("{:.1}%", r.accuracy * 100.0),
                r.mispredicted.len().to_string(),
            ]);
        }
        format!(
            "ablation: Eq. 1 factor study ({}/{} prediction)\n\n{}",
            self.hi,
            self.lo,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{BenchResult, LevelMeasurement};
    use crate::suite::Machine;
    use std::collections::BTreeMap;

    fn data() -> SuiteData {
        // Construct factors so only the full product separates: winners
        // have (low mix, low held); losers either (high mix, high held) or
        // mixed signals that single factors misread.
        let mk = |name: &str, s41: f64, mix: f64, held: f64, scal: f64| {
            let f = smtsm::SmtsmFactors {
                mix_deviation: mix,
                disp_held: held,
                scalability: scal,
            };
            let lvl = |smt, perf| LevelMeasurement {
                smt,
                perf,
                cycles: 100,
                completed: true,
                factors: f,
                naive: [0.0; 4],
            };
            let mut levels = BTreeMap::new();
            levels.insert(SmtLevel::Smt1, lvl(SmtLevel::Smt1, 1.0));
            levels.insert(SmtLevel::Smt4, lvl(SmtLevel::Smt4, s41));
            BenchResult {
                name: name.into(),
                levels,
            }
        };
        SuiteData {
            machine: Machine::Power7OneChip,
            scale: 1.0,
            results: vec![
                mk("w1", 1.8, 0.10, 0.05, 1.0), // product 0.005
                mk("w2", 1.4, 0.40, 0.02, 1.0), // high mix but low held: product 0.008
                mk("l1", 0.6, 0.35, 0.60, 1.0), // product 0.21
                mk("l2", 0.5, 0.15, 0.30, 4.0), // low mix; scalability-driven: 0.18
            ],
        }
    }

    #[test]
    fn full_metric_beats_single_factors_on_mixed_signals() {
        let a = run(&data(), SmtLevel::Smt4, SmtLevel::Smt4, SmtLevel::Smt1).unwrap();
        assert_eq!(a.rows.len(), 6);
        assert_eq!(a.full_accuracy(), 1.0, "full product must separate");
        let mix_only = a.rows.iter().find(|r| r.variant.contains("mix")).unwrap();
        assert!(
            mix_only.accuracy < 1.0,
            "mix alone must misread w2/l2: {}",
            mix_only.accuracy
        );
        assert!(a.render().contains("full metric"));
    }
}
