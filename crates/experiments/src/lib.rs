//! `smt-experiments`: the harness regenerating every table and figure of
//! *"An SMT-Selection Metric to Improve Multithreaded Applications'
//! Performance"* (Funston et al., IPDPS 2012).
//!
//! - [`runner`] — the measurement protocol (whole-run throughput + online
//!   counter windows) for one (machine, workload, SMT level).
//! - [`engine`] — the batch engine executing a (machine, workload, level)
//!   job matrix with fault isolation, a content-addressed result cache
//!   ([`cache`]), and pluggable progress reporting ([`progress`]).
//! - [`suite`] — dataset collection: every benchmark at every SMT level on
//!   each evaluation machine.
//! - [`scatter`] — the generic "metric vs. speedup + threshold" template
//!   behind Figs. 6 and 8-15.
//! - [`figures`] — one function per paper artifact (Figs. 1, 2, 6-17,
//!   Table I, success rates).
//! - [`sched_demo`] — the Section-V dynamic-selection experiment.
//! - [`autotune`] — the stability-vs-regret study of the closed-loop
//!   autotuner (`smt-autotune`) against static levels and the per-phase
//!   oracle.
//! - [`ablation`] — the Eq.-1 factor study (full product vs. each factor
//!   removed).
//! - [`placement`] — the placement-allocator accuracy study: each search
//!   strategy's regret against a simulate-every-placement oracle.
//! - [`perf`] — the simulator perf-trajectory harness behind `repro perf`
//!   and the committed `BENCH_sim.json`.
//! - [`corpus`] — directories of recorded `.smtc` counter traces replayed
//!   through the dynamic-selection decision core under a chosen policy
//!   (re-exported from the `smt-corpus` crate).
//! - [`score`] — `repro score`: the canonical-corpus accuracy scorer and
//!   its committed `results/score/` artifacts and regression gate.
//!
//! The `repro` binary drives everything:
//! `cargo run --release -p smt-experiments --bin repro -- all --scale 0.3`.

#![warn(missing_docs)]

pub mod ablation;
pub mod autotune;
pub mod cache;
pub mod corpus;
pub mod engine;
pub mod figures;
pub mod perf;
pub mod placement;
pub mod plot;
pub mod progress;
pub mod runner;
pub mod scatter;
pub mod sched_demo;
pub mod score;
pub mod suite;
pub mod validation;

pub use autotune::{AutotuneScenario, AutotuneStudy};
pub use cache::ResultCache;
pub use corpus::{replay_dir, replay_trace, CorpusReport, ReplayPolicy, TraceReplay};
pub use engine::{Engine, EngineMetrics, JobError, RunPlan, RunRequest, SweepResult};
pub use perf::{check_regression, run_perf, PerfEntry, PerfOptions, PerfReport, PerfRun};
pub use placement::{PlacementRow, PlacementStudy};
pub use progress::{JobOutcome, NullSink, ProgressEvent, ProgressSink, StderrSink};
pub use runner::{measure_level, BenchResult, LevelMeasurement, ProtocolConfig};
pub use scatter::{ScatterFigure, ScatterPoint};
pub use score::{run_score, write_artifacts, ScoreCmd, ScoreOutcome, MIN_OVERALL_ACCURACY};
pub use suite::{Machine, SuiteData};
