//! Pluggable progress reporting for the batch engine.
//!
//! The engine fires [`ProgressEvent`]s from whatever worker thread runs a
//! job, so a [`ProgressSink`] must be `Send + Sync`. The two built-in
//! sinks cover the common cases: [`NullSink`] for silent library use and
//! [`StderrSink`] for command-line progress lines.

use crate::engine::EngineMetrics;
use smt_sim::SmtLevel;

/// What the engine just did. Borrowed data only — sinks that need to keep
/// an event must copy out of it.
#[derive(Debug)]
pub enum ProgressEvent<'a> {
    /// A sweep is starting with this many (benchmark, level) jobs.
    SweepStarted {
        /// Total jobs in the plan.
        jobs_total: usize,
    },
    /// One job finished (computed, served from cache, or failed).
    JobFinished {
        /// Benchmark name.
        benchmark: &'a str,
        /// SMT level of the job.
        level: SmtLevel,
        /// How the job was satisfied.
        outcome: JobOutcome,
        /// Jobs finished so far, including this one.
        jobs_done: usize,
        /// Total jobs in the plan.
        jobs_total: usize,
        /// Wall time this job took (zero-ish for cache hits).
        elapsed: std::time::Duration,
    },
    /// The whole sweep finished.
    SweepFinished {
        /// Final counters for the sweep.
        metrics: &'a EngineMetrics,
    },
}

/// How a single job was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Simulated fresh.
    Computed,
    /// Loaded from the result cache.
    CacheHit,
    /// Failed (panicked or hit the cycle cap); details in the sweep's
    /// `errors`.
    Failed,
}

/// Receives engine progress events, possibly from several threads at once.
pub trait ProgressSink: Send + Sync {
    /// Called for every [`ProgressEvent`]. Implementations should be
    /// cheap; they run on the measurement threads.
    fn on_event(&self, event: &ProgressEvent<'_>);
}

/// Discards all events (the engine default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn on_event(&self, _event: &ProgressEvent<'_>) {}
}

/// Prints one line per job and a summary line per sweep to stderr.
///
/// Each event is formatted into a buffer first and emitted with a single
/// `write_all`: stderr is unbuffered, so `eprintln!` would issue one
/// `write(2)` per format fragment, and fragments from concurrent worker
/// threads (or a child process sharing the descriptor) can interleave
/// mid-line. One syscall per event keeps every line atomic in practice.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl ProgressSink for StderrSink {
    fn on_event(&self, event: &ProgressEvent<'_>) {
        use std::io::Write;
        let line = match event {
            ProgressEvent::SweepStarted { jobs_total } => {
                format!("[engine] sweep started: {jobs_total} jobs\n")
            }
            ProgressEvent::JobFinished {
                benchmark,
                level,
                outcome,
                jobs_done,
                jobs_total,
                elapsed,
            } => {
                let tag = match outcome {
                    JobOutcome::Computed => "ran",
                    JobOutcome::CacheHit => "hit",
                    JobOutcome::Failed => "FAILED",
                };
                format!(
                    "[engine] [{jobs_done}/{jobs_total}] {tag:>6} {benchmark} @ {level} ({elapsed:.1?})\n"
                )
            }
            ProgressEvent::SweepFinished { metrics } => {
                format!("[engine] {}\n", metrics.summary())
            }
        };
        let _ = std::io::stderr().lock().write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A sink that records outcomes, for engine tests.
    #[derive(Default)]
    pub struct RecordingSink {
        pub outcomes: Mutex<Vec<JobOutcome>>,
    }

    impl ProgressSink for RecordingSink {
        fn on_event(&self, event: &ProgressEvent<'_>) {
            if let ProgressEvent::JobFinished { outcome, .. } = event {
                self.outcomes.lock().unwrap().push(*outcome);
            }
        }
    }

    #[test]
    fn null_sink_ignores_everything() {
        NullSink.on_event(&ProgressEvent::SweepStarted { jobs_total: 3 });
    }

    #[test]
    fn recording_sink_collects_outcomes() {
        let sink = RecordingSink::default();
        sink.on_event(&ProgressEvent::JobFinished {
            benchmark: "EP",
            level: SmtLevel::Smt2,
            outcome: JobOutcome::Computed,
            jobs_done: 1,
            jobs_total: 2,
            elapsed: std::time::Duration::from_millis(1),
        });
        assert_eq!(*sink.outcomes.lock().unwrap(), vec![JobOutcome::Computed]);
    }
}
