//! Content-addressed persistence for completed measurements.
//!
//! A job is identified by everything that determines its outcome: the
//! machine configuration, the (scaled, seeded) workload specification, the
//! SMT level, and the measurement-protocol constants. Those four are
//! serialized to canonical JSON together with a format-version tag and
//! hashed; the hash names a file under the cache directory holding the
//! [`LevelMeasurement`] as JSON.
//!
//! Because the key is derived from the full job description, invalidation
//! is automatic: change any field of the machine, the workload (including
//! its seed or scale), the protocol, or bump [`CACHE_VERSION`], and the
//! job hashes to a fresh key, leaving stale entries orphaned on disk
//! (delete the directory to reclaim the space). Only *completed*
//! measurements are stored — a run that hit the cycle cap is re-attempted
//! on the next sweep rather than pinned as a permanent failure.

use crate::runner::{LevelMeasurement, ProtocolConfig};
use smt_sim::{Error, MachineConfig, SmtLevel};
use smt_workloads::WorkloadSpec;
use std::path::{Path, PathBuf};

/// Bumped whenever the measurement semantics or on-disk format change in
/// a way that must invalidate old entries.
pub const CACHE_VERSION: u32 = 1;

/// A directory of measurement files keyed by job-content hash.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache { dir: dir.into() }
    }

    /// The conventional location used by the `repro` binary.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results/cache")
    }

    /// Where this cache lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content hash identifying one job.
    pub fn key(
        cfg: &MachineConfig,
        spec: &WorkloadSpec,
        smt: SmtLevel,
        protocol: &ProtocolConfig,
    ) -> String {
        use serde::Serialize;
        let ident = serde::Value::Array(vec![
            CACHE_VERSION.to_value(),
            cfg.to_value(),
            spec.to_value(),
            smt.to_value(),
            protocol.to_value(),
        ]);
        let canonical = serde_json::to_string(&ident).unwrap_or_else(|_| format!("{ident:?}"));
        // Two independent FNV-1a streams give a 128-bit name; plenty for
        // the few thousand jobs a full reproduction generates.
        let a = fnv1a(canonical.as_bytes(), 0xcbf2_9ce4_8422_2325);
        let b = fnv1a(canonical.as_bytes(), 0x6c62_272e_07bb_0142);
        format!("{a:016x}{b:016x}")
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Load the measurement stored under `key`, if any.
    ///
    /// A missing file is `Ok(None)`; an unreadable or undecodable file is
    /// an error (the engine treats it as a miss and recomputes).
    pub fn load(&self, key: &str) -> Result<Option<LevelMeasurement>, Error> {
        let path = self.path_for(key);
        let body = match std::fs::read_to_string(&path) {
            Ok(body) => body,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::Io(format!("{}: {e}", path.display()))),
        };
        let m = serde_json::from_str::<LevelMeasurement>(&body)
            .map_err(|e| Error::Serde(format!("{}: {e}", path.display())))?;
        Ok(Some(m))
    }

    /// Persist a completed measurement under `key`.
    ///
    /// Incomplete measurements are rejected: caching a capped run would
    /// make the failure permanent instead of retryable.
    pub fn store(&self, key: &str, m: &LevelMeasurement) -> Result<(), Error> {
        if !m.completed {
            return Err(Error::InvalidMeasurement(
                "refusing to cache an incomplete run".into(),
            ));
        }
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| Error::Io(format!("{}: {e}", self.dir.display())))?;
        let path = self.path_for(key);
        let body = serde_json::to_string_pretty(m).map_err(|e| Error::Serde(e.to_string()))?;
        // Write-then-rename so a crashed writer never leaves a torn entry
        // that poisons every later sweep.
        let tmp = self.dir.join(format!("{key}.tmp"));
        std::fs::write(&tmp, body).map_err(|e| Error::Io(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path).map_err(|e| Error::Io(format!("{}: {e}", path.display())))?;
        Ok(())
    }

    /// Number of entries currently on disk (0 if the directory is absent).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache directory holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::catalog;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smt-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        let cfg = MachineConfig::generic(2);
        let spec = catalog::ep().scaled(0.02);
        let proto = ProtocolConfig::default();
        let k1 = ResultCache::key(&cfg, &spec, SmtLevel::Smt1, &proto);
        let k2 = ResultCache::key(&cfg, &spec, SmtLevel::Smt1, &proto);
        assert_eq!(k1, k2, "same job must hash identically");

        let k_level = ResultCache::key(&cfg, &spec, SmtLevel::Smt2, &proto);
        assert_ne!(k1, k_level, "level is part of the key");

        let mut reseeded = spec.clone();
        reseeded.seed = reseeded.seed.wrapping_add(1);
        let k_seed = ResultCache::key(&cfg, &reseeded, SmtLevel::Smt1, &proto);
        assert_ne!(k1, k_seed, "workload seed is part of the key");

        let shorter = ProtocolConfig {
            window_cycles: 40_000,
            ..ProtocolConfig::default()
        };
        let k_proto = ResultCache::key(&cfg, &spec, SmtLevel::Smt1, &shorter);
        assert_ne!(k1, k_proto, "protocol constants are part of the key");
    }

    #[test]
    fn store_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::new(&dir);
        let cfg = MachineConfig::generic(1);
        let spec = catalog::ep().scaled(0.01);
        let proto = ProtocolConfig::default();
        let m = crate::runner::measure_level(&cfg, &spec, SmtLevel::Smt1, &proto);
        assert!(m.completed);

        let key = ResultCache::key(&cfg, &spec, SmtLevel::Smt1, &proto);
        assert!(cache.load(&key).unwrap().is_none(), "cold cache misses");
        cache.store(&key, &m).unwrap();
        let back = cache.load(&key).unwrap().expect("stored entry loads");
        assert_eq!(back.perf, m.perf);
        assert_eq!(back.cycles, m.cycles);
        assert_eq!(back.smt, m.smt);
        assert_eq!(back.factors.value(), m.factors.value());
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incomplete_runs_are_not_cached() {
        let dir = tmp_dir("incomplete");
        let cache = ResultCache::new(&dir);
        let cfg = MachineConfig::generic(1);
        let spec = catalog::ep().scaled(0.01);
        let proto = ProtocolConfig::default();
        let mut m = crate::runner::measure_level(&cfg, &spec, SmtLevel::Smt1, &proto);
        m.completed = false;
        let key = ResultCache::key(&cfg, &spec, SmtLevel::Smt1, &proto);
        assert!(cache.store(&key, &m).is_err());
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
