//! Trace-corpus replay — re-exported from [`smt_corpus`].
//!
//! The replay engine started life here as an experiments-only helper;
//! PR 10 promoted it into the `smt-corpus` crate so the canonical
//! benchmark corpus (manifest, builder, batch scorer) can use it without
//! depending on the experiment harness. This module keeps the old paths
//! (`smt_experiments::corpus::replay_dir` etc.) alive as aliases.

pub use smt_corpus::replay::{
    corpus_files, machine_for_tag, replay_dir, replay_trace, selector_for_machine, CorpusReport,
    ReplayPolicy, TraceReplay, TRACE_EXT,
};
