//! Trace corpora as engine input: replay recorded counter traces through
//! the dynamic-selection decision core.
//!
//! `smt-collect` turns a live (or simulated) session into a `.smtc` trace
//! file; this module turns a *directory* of such traces into an offline
//! experiment. Each trace is replayed through a fresh
//! [`DynamicSmtController`] — the same decision core behind `smtd` and the
//! Section-V scheduler demo — so recorded production sessions can be
//! re-analyzed under different thresholds without touching the machine
//! they came from.

use std::path::{Path, PathBuf};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use smt_collect::TraceReader;
use smt_sched::{ControllerConfig, DynamicSmtController};
use smt_sim::{Error, MachineConfig, SmtLevel};
use smt_stats::table::{fnum, Table};
use smtsm::{LevelSelector, MetricSpec, ThresholdPredictor};

/// File extension recorded traces carry.
pub const TRACE_EXT: &str = "smtc";

/// Replay policy: thresholds plus controller tuning.
#[derive(Debug, Clone, Copy)]
pub struct ReplayPolicy {
    /// SMT4-vs-SMT2 metric threshold.
    pub threshold_top: f64,
    /// SMT2-vs-SMT1 metric threshold.
    pub threshold_mid: f64,
    /// Controller tuning (hysteresis, probe interval, ...).
    pub controller: ControllerConfig,
}

impl Default for ReplayPolicy {
    fn default() -> ReplayPolicy {
        ReplayPolicy {
            threshold_top: 0.15,
            threshold_mid: 0.20,
            controller: ControllerConfig::default(),
        }
    }
}

/// Outcome of replaying one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceReplay {
    /// Trace file name.
    pub trace: String,
    /// Machine tag from the trace header.
    pub machine: String,
    /// Windows replayed.
    pub windows: u64,
    /// Level switches the controller decided on.
    pub switches: u64,
    /// Level the controller settled on after the last window.
    pub final_level: SmtLevel,
    /// Last smoothed metric value observed at the top level.
    pub final_metric: Option<f64>,
    /// Windows spent at each level, in `SmtLevel::ALL` order.
    pub windows_at_level: Vec<(SmtLevel, u64)>,
}

/// A corpus replay: every trace in a directory under one policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusReport {
    /// Per-trace outcomes, in file-name order.
    pub replays: Vec<TraceReplay>,
    /// Files that failed to replay, as `(name, error)` pairs.
    pub failures: Vec<(String, String)>,
}

/// Map a trace header's machine tag onto a machine configuration. The
/// tags mirror the `smtd` session machines.
pub fn machine_for_tag(tag: &str) -> Result<MachineConfig, Error> {
    match tag {
        "p7" => Ok(MachineConfig::power7(1)),
        "p7x2" => Ok(MachineConfig::power7(2)),
        "nhm" => Ok(MachineConfig::nehalem()),
        other => Err(Error::InvalidMachine(format!(
            "trace machine tag {other:?} (expected p7, p7x2, or nhm)"
        ))),
    }
}

/// Replay one trace through a fresh controller under `policy`.
pub fn replay_trace(path: &Path, policy: &ReplayPolicy) -> Result<TraceReplay, Error> {
    let mut reader = TraceReader::open(path)?;
    let machine = machine_for_tag(&reader.meta().machine)?;
    let spec = MetricSpec::for_arch(&machine.arch);
    let selector = LevelSelector::three_level(
        ThresholdPredictor::fixed(policy.threshold_top),
        ThresholdPredictor::fixed(policy.threshold_mid),
    );
    let mut ctl = DynamicSmtController::new(selector, spec, policy.controller);
    let tag = reader.meta().machine.clone();
    let mut windows = 0u64;
    let mut switches = 0u64;
    let mut final_level = ctl.top_level();
    let mut final_metric = None;
    let mut at_level = [0u64; SmtLevel::ALL.len()];
    while let Some(w) = reader.next()? {
        let decision = ctl.observe(&w);
        windows += 1;
        if decision.switched {
            switches += 1;
        }
        if decision.metric.is_some() {
            final_metric = decision.metric;
        }
        final_level = decision.level;
        if let Some(i) = SmtLevel::ALL.iter().position(|l| *l == decision.level) {
            at_level[i] += 1;
        }
    }
    Ok(TraceReplay {
        trace: path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string()),
        machine: tag,
        windows,
        switches,
        final_level,
        final_metric,
        windows_at_level: SmtLevel::ALL.iter().copied().zip(at_level).collect(),
    })
}

/// Trace files in `dir`, sorted by name for deterministic report order.
pub fn corpus_files(dir: &Path) -> Result<Vec<PathBuf>, Error> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| Error::Io(format!("reading corpus dir {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == TRACE_EXT))
        .collect();
    files.sort();
    Ok(files)
}

/// Replay every `.smtc` trace in `dir` in parallel. A corrupt or
/// unreadable trace becomes a `failures` entry, not an error for the whole
/// corpus — one bad file must not sink a thousand good ones.
pub fn replay_dir(dir: &Path, policy: &ReplayPolicy) -> Result<CorpusReport, Error> {
    let files = corpus_files(dir)?;
    let outcomes: Vec<(String, Result<TraceReplay, Error>)> = files
        .par_iter()
        .map(|path| {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            (name, replay_trace(path, policy))
        })
        .collect();
    let mut replays = Vec::new();
    let mut failures = Vec::new();
    for (name, outcome) in outcomes {
        match outcome {
            Ok(r) => replays.push(r),
            Err(e) => failures.push((name, e.to_string())),
        }
    }
    Ok(CorpusReport { replays, failures })
}

impl CorpusReport {
    /// Render the corpus outcome as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "trace", "machine", "windows", "switches", "final", "metric",
        ]);
        for r in &self.replays {
            t.row(vec![
                r.trace.clone(),
                r.machine.clone(),
                r.windows.to_string(),
                r.switches.to_string(),
                r.final_level.to_string(),
                r.final_metric
                    .map(|m| fnum(m, 4))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        let mut out = format!(
            "corpus: {} trace(s) replayed, {} failed\n\n{}",
            self.replays.len(),
            self.failures.len(),
            t.render()
        );
        for (name, err) in &self.failures {
            out.push_str(&format!("  FAILED {name}: {err}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_collect::{TraceMeta, TraceWriter};
    use smt_sim::Simulation;
    use smt_workloads::{catalog, SyntheticWorkload};

    fn record_sim_trace(path: &Path, windows: u64) -> Result<(), Error> {
        let cfg = MachineConfig::power7(1);
        let nports = cfg.arch.num_ports();
        let mut sim = Simulation::new(
            cfg,
            SmtLevel::Smt4,
            SyntheticWorkload::new(catalog::ep().scaled(1.0)),
        );
        let mut w = TraceWriter::create(
            path,
            TraceMeta {
                machine: "p7".to_string(),
                nports,
                window_cycles: 25_000,
            },
        )?;
        for _ in 0..windows {
            w.append(&sim.measure_window(25_000))?;
        }
        w.finalize()?;
        Ok(())
    }

    #[test]
    fn replaying_a_recorded_sim_trace_works() -> Result<(), Error> {
        let dir = std::env::temp_dir().join("smtc-corpus-test");
        std::fs::create_dir_all(&dir).map_err(|e| Error::Io(e.to_string()))?;
        let path = dir.join("ep-p7.smtc");
        record_sim_trace(&path, 6)?;
        let replay = replay_trace(&path, &ReplayPolicy::default())?;
        assert_eq!(replay.windows, 6);
        assert_eq!(replay.machine, "p7");
        let counted: u64 = replay.windows_at_level.iter().map(|(_, n)| n).sum();
        assert_eq!(counted, 6);

        let report = replay_dir(&dir, &ReplayPolicy::default())?;
        assert!(report.replays.iter().any(|r| r.trace == "ep-p7.smtc"));
        assert!(report.render().contains("ep-p7.smtc"));
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn corrupt_trace_is_a_failure_not_a_crash() -> Result<(), Error> {
        let dir = std::env::temp_dir().join("smtc-corpus-corrupt");
        std::fs::create_dir_all(&dir).map_err(|e| Error::Io(e.to_string()))?;
        let path = dir.join("bad.smtc");
        std::fs::write(&path, b"not a trace at all").map_err(|e| Error::Io(e.to_string()))?;
        let report = replay_dir(&dir, &ReplayPolicy::default())?;
        assert!(report.replays.is_empty());
        assert_eq!(report.failures.len(), 1);
        assert!(report.render().contains("FAILED bad.smtc"));
        std::fs::remove_file(&path).ok();
        Ok(())
    }

    #[test]
    fn unknown_machine_tag_is_rejected() {
        assert!(machine_for_tag("vax").is_err());
        assert!(machine_for_tag("p7").is_ok());
        assert!(machine_for_tag("p7x2").is_ok());
        assert!(machine_for_tag("nhm").is_ok());
    }
}
