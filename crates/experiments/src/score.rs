//! `repro score` — corpus accuracy scoring as a repro artifact.
//!
//! Thin orchestration over [`smt_corpus`]: load the committed manifest,
//! run the resumable batch scorer, publish the deterministic artifacts
//! under `results/score/` (`score.json`, `REPORT.md`, `trajectory.json`),
//! and gate against a committed baseline. This is where the paper's
//! headline — 93% on POWER7, 86% on Nehalem, ~90% overall (Section VI) —
//! becomes a *regression-tested number* instead of a sentence in a
//! README.

use std::path::{Path, PathBuf};

use smt_corpus::{
    check_regression, render_markdown, score_corpus, CorpusManifest, ScoreOptions, ScoreReport,
    ScoreRun, ScoreTrajectory, SizeTier,
};
use smt_sim::Error;

/// Default journal location (gitignored; lives next to the artifacts).
pub const DEFAULT_JOURNAL: &str = "results/score/journal.jsonl";

/// Default committed score file.
pub const DEFAULT_SCORE: &str = "results/score/score.json";

/// Default committed Markdown report.
pub const DEFAULT_REPORT_MD: &str = "results/score/REPORT.md";

/// Default committed accuracy-trajectory file.
pub const DEFAULT_TRAJECTORY: &str = "results/score/trajectory.json";

/// The floor the reproduction must clear: the paper reports ~90% overall,
/// and the acceptance bar for this repo's corpus is ≥85% — anything below
/// means the metric, the thresholds, or the corpus itself regressed.
pub const MIN_OVERALL_ACCURACY: f64 = 0.85;

/// Default accuracy-regression tolerance for `--check`, in percentage
/// points.
pub const DEFAULT_TOLERANCE_POINTS: f64 = 2.0;

/// Everything `repro score` needs.
#[derive(Debug, Clone)]
pub struct ScoreCmd {
    /// Manifest to score (default: the committed one).
    pub manifest: PathBuf,
    /// Journal file for resumable scoring.
    pub journal: PathBuf,
    /// Resume from the journal instead of starting fresh.
    pub resume: bool,
    /// Restrict to one tier.
    pub tier: Option<SizeTier>,
    /// Stop after N new entries (CI resume smoke).
    pub limit: Option<usize>,
    /// Run label recorded in the report and trajectory.
    pub label: Option<String>,
    /// Directory the artifacts are written into (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Baseline `score.json` to gate against.
    pub check: Option<PathBuf>,
    /// Allowed accuracy drop vs. the baseline, in percentage points.
    pub tolerance_points: f64,
}

impl Default for ScoreCmd {
    fn default() -> ScoreCmd {
        ScoreCmd {
            manifest: PathBuf::from(smt_corpus::DEFAULT_MANIFEST),
            journal: PathBuf::from(DEFAULT_JOURNAL),
            resume: false,
            tier: None,
            limit: None,
            label: None,
            out_dir: None,
            check: None,
            tolerance_points: DEFAULT_TOLERANCE_POINTS,
        }
    }
}

/// What a `repro score` invocation produced.
#[derive(Debug)]
pub enum ScoreOutcome {
    /// The run is incomplete (`--limit` stopped it); resume to finish.
    Partial {
        /// Entries scored so far (journaled).
        done: usize,
        /// Entries still to score.
        remaining: usize,
    },
    /// The run completed and the report was produced (and written, if an
    /// output directory was configured).
    Complete(Box<ScoreReport>),
}

/// Run the scorer end to end. Artifact writes and the `--check` gate only
/// happen on completion; a partial (limited) run just journals.
pub fn run_score(cmd: &ScoreCmd) -> Result<ScoreOutcome, Error> {
    let manifest = CorpusManifest::load(&cmd.manifest)?;
    let opts = ScoreOptions {
        tier: cmd.tier,
        limit: cmd.limit,
        label: cmd.label.clone(),
    };
    let run: ScoreRun = score_corpus(&manifest, &cmd.manifest, &cmd.journal, cmd.resume, &opts)?;
    let Some(report) = run.report else {
        return Ok(ScoreOutcome::Partial {
            done: run.resumed + run.scored,
            remaining: run.remaining,
        });
    };

    if let Some(dir) = &cmd.out_dir {
        write_artifacts(&report, dir)?;
    }
    if let Some(baseline_path) = &cmd.check {
        let baseline = ScoreReport::load(baseline_path)?;
        check_regression(&report, &baseline, cmd.tolerance_points)?;
        if report.summary.accuracy < MIN_OVERALL_ACCURACY {
            return Err(Error::InvalidMeasurement(format!(
                "overall accuracy {:.1}% is below the {:.0}% reproduction floor",
                report.summary.accuracy * 100.0,
                MIN_OVERALL_ACCURACY * 100.0
            )));
        }
    }
    Ok(ScoreOutcome::Complete(Box::new(report)))
}

/// Write `score.json`, `REPORT.md`, and the updated `trajectory.json`
/// into `dir`. The trajectory only records labeled runs — unlabeled
/// scoring is exploratory and leaves the committed history alone.
pub fn write_artifacts(report: &ScoreReport, dir: &Path) -> Result<(), Error> {
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::Io(format!("creating {}: {e}", dir.display())))?;
    let score_path = dir.join("score.json");
    std::fs::write(&score_path, report.to_json()?)
        .map_err(|e| Error::Io(format!("writing {}: {e}", score_path.display())))?;

    let traj_path = dir.join("trajectory.json");
    let mut trajectory = ScoreTrajectory::load(&traj_path)?;
    if report.label != "unlabeled" {
        trajectory.record(report);
        trajectory.save(&traj_path)?;
    }

    let md_path = dir.join("REPORT.md");
    std::fs::write(&md_path, render_markdown(report, &trajectory))
        .map_err(|e| Error::Io(format!("writing {}: {e}", md_path.display())))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_corpus::{summarize, CorpusArch, EntryOutcome};
    use smt_sim::SmtLevel;

    fn fake_report(label: &str) -> ScoreReport {
        let entries: Vec<EntryOutcome> = (0..10)
            .map(|i| EntryOutcome {
                id: format!("p7/s/w{i}"),
                arch: CorpusArch::P7,
                tier: SizeTier::S,
                workload: format!("w{i}"),
                oracle_best: SmtLevel::Smt4,
                predicted: Some(if i < 9 {
                    SmtLevel::Smt4
                } else {
                    SmtLevel::Smt1
                }),
                exact: i < 9,
                correct: i < 9,
                perf_loss: Some(if i < 9 { 0.0 } else { 0.4 }),
                windows: 32,
                final_metric: Some(0.05),
                error: None,
            })
            .collect();
        ScoreReport {
            label: label.to_string(),
            manifest_checksum: 1,
            tier: None,
            summary: summarize(&entries),
            entries,
        }
    }

    #[test]
    fn artifacts_land_and_unlabeled_runs_stay_out_of_history() {
        let dir = std::env::temp_dir().join("smt-score-artifacts-test");
        std::fs::remove_dir_all(&dir).ok();
        write_artifacts(&fake_report("unlabeled"), &dir).unwrap();
        assert!(dir.join("score.json").exists());
        assert!(dir.join("REPORT.md").exists());
        assert!(
            !dir.join("trajectory.json").exists(),
            "unlabeled run recorded"
        );
        write_artifacts(&fake_report("pr10"), &dir).unwrap();
        let traj = ScoreTrajectory::load(&dir.join("trajectory.json")).unwrap();
        assert_eq!(traj.runs.len(), 1);
        assert_eq!(traj.runs[0].label, "pr10");
        std::fs::remove_dir_all(&dir).ok();
    }
}
