//! Suite-level data collection.
//!
//! All evaluation figures derive from three underlying datasets — the
//! POWER7-like single-chip suite (Figs. 1, 2, 6-9, 16, 17), the two-chip
//! suite (Figs. 13-15), and the Nehalem-like suite (Figs. 10, 12). Each is
//! collected once per invocation (every benchmark at every supported SMT
//! level) and shared by the figure generators.

use crate::engine::{Engine, RunRequest};
use crate::runner::BenchResult;
use serde::{Deserialize, Serialize};
use smt_sim::{Error, MachineConfig, SmtLevel};
use smt_workloads::catalog;

/// Which evaluation machine a dataset was collected on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Machine {
    /// One 8-core POWER7-like chip (SMT1/2/4).
    Power7OneChip,
    /// Two 8-core POWER7-like chips, 16 cores, NUMA (SMT1/2/4).
    Power7TwoChip,
    /// One 4-core Nehalem-like chip (SMT1/2).
    Nehalem,
}

impl Machine {
    /// Machine configuration.
    pub fn config(self) -> MachineConfig {
        match self {
            Machine::Power7OneChip => MachineConfig::power7(1),
            Machine::Power7TwoChip => MachineConfig::power7(2),
            Machine::Nehalem => MachineConfig::nehalem(),
        }
    }

    /// Evaluation suite for the machine.
    pub fn suite(self) -> Vec<smt_workloads::WorkloadSpec> {
        match self {
            Machine::Power7OneChip | Machine::Power7TwoChip => catalog::power7_suite(),
            Machine::Nehalem => catalog::nehalem_suite(),
        }
    }

    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Machine::Power7OneChip => "AIX-like / 8-core POWER7-like chip",
            Machine::Power7TwoChip => "AIX-like / two 8-core POWER7-like chips",
            Machine::Nehalem => "Linux-like / quad-core Nehalem-like (Core i7)",
        }
    }
}

/// One machine's complete measurement set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteData {
    /// The machine.
    pub machine: Machine,
    /// Work-scale factor applied to every catalog spec.
    pub scale: f64,
    /// Per-benchmark measurements across all supported SMT levels.
    pub results: Vec<BenchResult>,
}

impl SuiteData {
    /// Collect the dataset: every suite benchmark at every supported SMT
    /// level, scaled by `scale` (1.0 = full catalog work sizes), on a
    /// default (parallel, uncached, silent) [`Engine`].
    pub fn collect(machine: Machine, scale: f64) -> Result<SuiteData, Error> {
        SuiteData::collect_with(machine, scale, &Engine::new())
    }

    /// Collect the dataset on a caller-configured engine (cache, progress
    /// sink, serial mode).
    ///
    /// Job failures do not abort the collection: a benchmark whose run
    /// panicked or hit the cycle cap simply lacks that level (see
    /// [`SuiteData::all_completed`]); the sweep's own error list is
    /// reported through the engine's progress sink.
    pub fn collect_with(machine: Machine, scale: f64, engine: &Engine) -> Result<SuiteData, Error> {
        let cfg = machine.config();
        let plan = RunRequest::on(cfg)
            .workloads(machine.suite().into_iter().map(|s| s.scaled(scale)))
            .all_levels()
            .plan()?;
        let sweep = engine.run(&plan);
        Ok(SuiteData {
            machine,
            scale,
            results: sweep.results,
        })
    }

    /// Find one benchmark's results by name.
    pub fn get(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// `(metric@metric_at, speedup hi/lo)` pairs for every benchmark —
    /// the raw material of every scatter figure.
    pub fn scatter_points(
        &self,
        metric_at: SmtLevel,
        hi: SmtLevel,
        lo: SmtLevel,
    ) -> Result<Vec<(String, f64, f64)>, Error> {
        self.results
            .iter()
            .map(|r| Ok((r.name.clone(), r.metric_at(metric_at)?, r.speedup(hi, lo)?)))
            .collect()
    }

    /// All runs completed within their cycle budget.
    pub fn all_completed(&self) -> bool {
        self.results
            .iter()
            .all(|r| r.levels.values().all(|l| l.completed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_configs_and_suites_line_up() {
        assert_eq!(Machine::Power7OneChip.config().total_cores(), 8);
        assert_eq!(Machine::Power7TwoChip.config().total_cores(), 16);
        assert_eq!(Machine::Nehalem.config().total_cores(), 4);
        assert_eq!(Machine::Power7OneChip.suite().len(), 28);
        assert!(Machine::Nehalem.suite().len() >= 20);
        assert!(Machine::Nehalem.label().contains("Nehalem"));
    }

    #[test]
    #[ignore = "slow: collects a real (tiny) suite; run with --ignored"]
    fn tiny_collection_has_all_levels() {
        let data = SuiteData::collect(Machine::Nehalem, 0.01).unwrap();
        assert_eq!(data.results.len(), Machine::Nehalem.suite().len());
        for r in &data.results {
            assert_eq!(r.levels.len(), 2, "{}", r.name);
        }
        let pts = data
            .scatter_points(SmtLevel::Smt2, SmtLevel::Smt2, SmtLevel::Smt1)
            .unwrap();
        assert_eq!(pts.len(), data.results.len());
    }
}
