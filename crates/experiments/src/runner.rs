//! The measurement protocol shared by all experiments.
//!
//! Section IV's protocol: at every SMT level the workload uses exactly as
//! many software threads as there are hardware contexts; performance is
//! whole-run throughput; the metric is sampled online from hardware
//! counters after a warm-up period. [`measure_level`] executes the
//! two-pass protocol for one (machine, workload, SMT level) job under a
//! [`ProtocolConfig`]; batch execution across levels, benchmarks, and
//! host cores lives in [`crate::engine`] — build a
//! [`crate::engine::RunRequest`] and hand the plan to
//! [`crate::engine::Engine::run`].

use serde::{Deserialize, Serialize};
use smt_sim::{Error, MachineConfig, Simulation, SmtLevel, Workload};
use smt_workloads::{SyntheticWorkload, WorkloadSpec};
use smtsm::{smtsm_factors, MetricSpec, NaiveMetric, SmtsmFactors};
use std::collections::BTreeMap;

/// Cycles to run before the metric window opens (cache warm-up, lock
/// steady state).
pub const WARMUP_CYCLES: u64 = 40_000;

/// Metric sampling-window length.
pub const WINDOW_CYCLES: u64 = 80_000;

/// Hard cap on any single run (a run hitting this is reported
/// `completed = false`).
pub const MAX_RUN_CYCLES: u64 = 120_000_000;

/// The tunable constants of the two-pass measurement protocol.
///
/// The protocol is part of every cached result's identity: two runs with
/// different protocol constants measure different things, so
/// [`crate::cache::ResultCache`] hashes this struct into the cache key
/// alongside the machine, workload, and SMT level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Cycles to run before the metric window opens.
    pub warmup_cycles: u64,
    /// Metric sampling-window length in cycles.
    pub window_cycles: u64,
    /// Hard cap on any single run; a run still unfinished at this point
    /// is reported with `completed = false`.
    pub max_run_cycles: u64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            warmup_cycles: WARMUP_CYCLES,
            window_cycles: WINDOW_CYCLES,
            max_run_cycles: MAX_RUN_CYCLES,
        }
    }
}

impl ProtocolConfig {
    /// Check the constants are usable (all non-zero, window fits the cap).
    pub fn validate(&self) -> Result<(), Error> {
        if self.warmup_cycles == 0 || self.window_cycles == 0 || self.max_run_cycles == 0 {
            return Err(Error::InvalidMeasurement(
                "protocol cycle counts must be non-zero".into(),
            ));
        }
        if self.window_cycles > self.max_run_cycles {
            return Err(Error::InvalidMeasurement(
                "window_cycles exceeds max_run_cycles".into(),
            ));
        }
        Ok(())
    }
}

/// Everything measured for one benchmark at one SMT level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelMeasurement {
    /// SMT level of this run.
    pub smt: SmtLevel,
    /// Whole-run throughput in work units per cycle.
    pub perf: f64,
    /// Total cycles for the full run.
    pub cycles: u64,
    /// The run completed within the cycle cap.
    pub completed: bool,
    /// SMTsm factors measured online at this level.
    pub factors: SmtsmFactors,
    /// The four Fig.-2 naive metrics at this level
    /// (L1 MPKI, CPI, BR MPKI, VSU fraction — [`NaiveMetric::ALL`] order).
    pub naive: [f64; 4],
}

/// A benchmark measured across SMT levels on one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Per-level measurements.
    pub levels: BTreeMap<SmtLevel, LevelMeasurement>,
}

impl BenchResult {
    /// The measurement at `level`, or [`Error::MissingLevel`].
    pub fn level(&self, level: SmtLevel) -> Result<&LevelMeasurement, Error> {
        self.levels.get(&level).ok_or_else(|| Error::MissingLevel {
            benchmark: self.name.clone(),
            level,
        })
    }

    /// Speedup of `hi` relative to `lo` (throughput ratio).
    pub fn speedup(&self, hi: SmtLevel, lo: SmtLevel) -> Result<f64, Error> {
        let h = self.level(hi)?;
        let l = self.level(lo)?;
        if l.perf <= 0.0 {
            return Err(Error::InvalidMeasurement(format!(
                "non-positive baseline perf {} for `{}` at {lo}",
                l.perf, self.name
            )));
        }
        Ok(h.perf / l.perf)
    }

    /// SMTsm value measured at `level`.
    pub fn metric_at(&self, level: SmtLevel) -> Result<f64, Error> {
        Ok(self.level(level)?.factors.value())
    }

    /// The naive metric's value at `level`.
    pub fn naive_at(&self, level: SmtLevel, which: NaiveMetric) -> Result<f64, Error> {
        let idx = NaiveMetric::ALL
            .iter()
            .position(|m| *m == which)
            .ok_or_else(|| {
                Error::InvalidMeasurement(format!("naive metric {which:?} is not tabulated"))
            })?;
        Ok(self.level(level)?.naive[idx])
    }

    /// The SMT level with the highest measured throughput.
    pub fn best_level(&self) -> Result<SmtLevel, Error> {
        self.levels
            .iter()
            .max_by(|a, b| a.1.perf.total_cmp(&b.1.perf))
            .map(|(l, _)| *l)
            .ok_or_else(|| {
                Error::InvalidMeasurement(format!("`{}` has no measurements", self.name))
            })
    }
}

/// Run one benchmark at one SMT level under `protocol`.
///
/// Two passes over identical (deterministic) executions: the first runs to
/// completion for whole-run throughput and the run length; the second
/// re-runs with a warm-up and counter window scaled to that length, so the
/// metric is always sampled from the steady state regardless of how the
/// workload was scaled.
///
/// The inputs must already be validated (the engine's
/// [`crate::engine::RunRequest::plan`] does this); an invalid machine or
/// an SMT level the machine does not support still panics inside the
/// simulator, which the engine catches and reports as a
/// [`crate::engine::JobError`].
pub fn measure_level(
    cfg: &MachineConfig,
    spec: &WorkloadSpec,
    smt: SmtLevel,
    protocol: &ProtocolConfig,
) -> LevelMeasurement {
    let metric_spec = MetricSpec::for_arch(&cfg.arch);

    // Pass 1: throughput.
    let workload = SyntheticWorkload::new(spec.clone());
    let mut sim = Simulation::new(cfg.clone(), smt, workload);
    let res = sim.run_until_finished(protocol.max_run_cycles);
    let total_cycles = sim.now().max(1);
    let perf = sim.workload().work_done() as f64 / total_cycles as f64;

    // Pass 2: counters, from a steady-state window inside the run.
    let warmup = protocol.warmup_cycles.min(total_cycles / 5).max(1);
    let window_len = protocol.window_cycles.min(total_cycles / 2).max(1);
    let workload = SyntheticWorkload::new(spec.clone());
    let mut sim = Simulation::new(cfg.clone(), smt, workload);
    sim.run_cycles(warmup);
    let window = sim.measure_window(window_len);
    let factors = smtsm_factors(&metric_spec, &window);
    let naive = [
        NaiveMetric::L1Mpki.value(&window),
        NaiveMetric::Cpi.value(&window),
        NaiveMetric::BranchMpki.value(&window),
        NaiveMetric::VsuFraction.value(&window),
    ];
    LevelMeasurement {
        smt,
        perf,
        cycles: total_cycles,
        completed: res.completed,
        factors,
        naive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::catalog;

    #[test]
    fn measure_level_produces_consistent_measurement() {
        let cfg = MachineConfig::generic(2);
        let spec = catalog::ep().scaled(0.02);
        let m = measure_level(&cfg, &spec, SmtLevel::Smt1, &ProtocolConfig::default());
        assert!(m.completed, "tiny run must complete");
        assert!(m.perf > 0.0);
        assert!(m.factors.scalability >= 1.0);
        assert!(m.naive[1] > 0.0, "CPI must be positive");
    }

    #[test]
    fn engine_sweep_matches_direct_measurement() {
        let cfg = MachineConfig::generic(2);
        let spec = catalog::blackscholes().scaled(0.05);
        let plan = crate::engine::RunRequest::on(cfg.clone())
            .benchmark(spec.clone())
            .levels(vec![SmtLevel::Smt1, SmtLevel::Smt2])
            .plan()
            .unwrap();
        let mut sweep = crate::engine::Engine::new().run(&plan);
        assert!(
            sweep.errors.is_empty(),
            "jobs must succeed: {:?}",
            sweep.errors
        );
        let r = sweep.results.swap_remove(0);
        assert_eq!(r.levels.len(), 2);
        let s = r.speedup(SmtLevel::Smt2, SmtLevel::Smt1).unwrap();
        assert!(s > 0.2 && s < 5.0, "speedup {s} out of sane range");
        let best = r.best_level().unwrap();
        assert!(best == SmtLevel::Smt1 || best == SmtLevel::Smt2);

        let direct = measure_level(&cfg, &spec, SmtLevel::Smt1, &ProtocolConfig::default());
        assert_eq!(direct.perf, r.levels[&SmtLevel::Smt1].perf);
    }

    #[test]
    fn engine_parallel_suite_matches_shape() {
        let cfg = MachineConfig::generic(2);
        let specs = vec![catalog::ep().scaled(0.01), catalog::ssca2().scaled(0.01)];
        let plan = crate::engine::RunRequest::on(cfg)
            .workloads(specs)
            .levels(vec![SmtLevel::Smt1, SmtLevel::Smt2])
            .plan()
            .unwrap();
        let sweep = crate::engine::Engine::new().run(&plan);
        assert!(sweep.errors.is_empty());
        assert_eq!(sweep.results.len(), 2);
        assert_eq!(sweep.results[0].name, "EP");
        for r in &sweep.results {
            assert_eq!(r.levels.len(), 2);
        }
    }

    #[test]
    fn determinism_same_spec_same_result() {
        let cfg = MachineConfig::generic(1);
        let spec = catalog::mg().scaled(0.01);
        let proto = ProtocolConfig::default();
        let a = measure_level(&cfg, &spec, SmtLevel::Smt1, &proto);
        let b = measure_level(&cfg, &spec, SmtLevel::Smt1, &proto);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.perf, b.perf);
        assert_eq!(a.factors.value(), b.factors.value());
    }

    #[test]
    fn accessors_report_missing_levels() {
        let r = BenchResult {
            name: "ghost".into(),
            levels: BTreeMap::new(),
        };
        assert!(matches!(
            r.metric_at(SmtLevel::Smt4),
            Err(Error::MissingLevel { .. })
        ));
        assert!(r.speedup(SmtLevel::Smt4, SmtLevel::Smt1).is_err());
        assert!(r.best_level().is_err());
    }
}
