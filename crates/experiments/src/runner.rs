//! The measurement protocol shared by all experiments.
//!
//! Section IV's protocol: at every SMT level the workload uses exactly as
//! many software threads as there are hardware contexts; performance is
//! whole-run throughput; the metric is sampled online from hardware
//! counters after a warm-up period. [`run_benchmark`] executes one
//! (machine, workload) pair across a set of SMT levels and collects
//! everything every figure needs; [`run_suite`] fans a whole suite out
//! across host cores with rayon.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use smt_sim::{MachineConfig, Simulation, SmtLevel, Workload};
use smt_workloads::{SyntheticWorkload, WorkloadSpec};
use smtsm::{smtsm_factors, MetricSpec, NaiveMetric, SmtsmFactors};
use std::collections::BTreeMap;

/// Cycles to run before the metric window opens (cache warm-up, lock
/// steady state).
pub const WARMUP_CYCLES: u64 = 40_000;

/// Metric sampling-window length.
pub const WINDOW_CYCLES: u64 = 80_000;

/// Hard cap on any single run (a run hitting this is reported
/// `completed = false`).
pub const MAX_RUN_CYCLES: u64 = 120_000_000;

/// Everything measured for one benchmark at one SMT level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelMeasurement {
    /// SMT level of this run.
    pub smt: SmtLevel,
    /// Whole-run throughput in work units per cycle.
    pub perf: f64,
    /// Total cycles for the full run.
    pub cycles: u64,
    /// The run completed within the cycle cap.
    pub completed: bool,
    /// SMTsm factors measured online at this level.
    pub factors: SmtsmFactors,
    /// The four Fig.-2 naive metrics at this level
    /// (L1 MPKI, CPI, BR MPKI, VSU fraction — [`NaiveMetric::ALL`] order).
    pub naive: [f64; 4],
}

/// A benchmark measured across SMT levels on one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Per-level measurements.
    pub levels: BTreeMap<SmtLevel, LevelMeasurement>,
}

impl BenchResult {
    /// Speedup of `hi` relative to `lo` (throughput ratio).
    pub fn speedup(&self, hi: SmtLevel, lo: SmtLevel) -> f64 {
        let h = self.levels.get(&hi).expect("missing hi level");
        let l = self.levels.get(&lo).expect("missing lo level");
        assert!(l.perf > 0.0, "zero baseline perf for {}", self.name);
        h.perf / l.perf
    }

    /// SMTsm value measured at `level`.
    pub fn metric_at(&self, level: SmtLevel) -> f64 {
        self.levels.get(&level).expect("missing level").factors.value()
    }

    /// The naive metric's value at `level`.
    pub fn naive_at(&self, level: SmtLevel, which: NaiveMetric) -> f64 {
        let idx = NaiveMetric::ALL.iter().position(|m| *m == which).expect("known metric");
        self.levels.get(&level).expect("missing level").naive[idx]
    }

    /// The SMT level with the highest measured throughput.
    pub fn best_level(&self) -> SmtLevel {
        *self
            .levels
            .iter()
            .max_by(|a, b| a.1.perf.partial_cmp(&b.1.perf).expect("no NaN perf"))
            .expect("nonempty")
            .0
    }
}

/// Run one benchmark at one SMT level.
///
/// Two passes over identical (deterministic) executions: the first runs to
/// completion for whole-run throughput and the run length; the second
/// re-runs with a warm-up and counter window scaled to that length, so the
/// metric is always sampled from the steady state regardless of how the
/// workload was scaled.
pub fn run_level(
    cfg: &MachineConfig,
    spec: &WorkloadSpec,
    smt: SmtLevel,
) -> LevelMeasurement {
    let metric_spec = MetricSpec::for_arch(&cfg.arch);

    // Pass 1: throughput.
    let workload = SyntheticWorkload::new(spec.clone());
    let mut sim = Simulation::new(cfg.clone(), smt, workload);
    let res = sim.run_until_finished(MAX_RUN_CYCLES);
    let total_cycles = sim.now().max(1);
    let perf = sim.workload().work_done() as f64 / total_cycles as f64;

    // Pass 2: counters, from a steady-state window inside the run.
    let warmup = WARMUP_CYCLES.min(total_cycles / 5).max(1);
    let window_len = WINDOW_CYCLES.min(total_cycles / 2).max(1);
    let workload = SyntheticWorkload::new(spec.clone());
    let mut sim = Simulation::new(cfg.clone(), smt, workload);
    sim.run_cycles(warmup);
    let window = sim.measure_window(window_len);
    let factors = smtsm_factors(&metric_spec, &window);
    let naive = [
        NaiveMetric::L1Mpki.value(&window),
        NaiveMetric::Cpi.value(&window),
        NaiveMetric::BranchMpki.value(&window),
        NaiveMetric::VsuFraction.value(&window),
    ];
    LevelMeasurement {
        smt,
        perf,
        cycles: total_cycles,
        completed: res.completed,
        factors,
        naive,
    }
}

/// Run one benchmark across several SMT levels.
pub fn run_benchmark(
    cfg: &MachineConfig,
    spec: &WorkloadSpec,
    levels: &[SmtLevel],
) -> BenchResult {
    let measurements: Vec<LevelMeasurement> = levels
        .par_iter()
        .map(|&smt| run_level(cfg, spec, smt))
        .collect();
    BenchResult {
        name: spec.name.clone(),
        levels: measurements.into_iter().map(|m| (m.smt, m)).collect(),
    }
}

/// Run a whole suite in parallel across (benchmark x level) pairs.
pub fn run_suite(
    cfg: &MachineConfig,
    specs: &[WorkloadSpec],
    levels: &[SmtLevel],
) -> Vec<BenchResult> {
    let jobs: Vec<(usize, SmtLevel)> = (0..specs.len())
        .flat_map(|i| levels.iter().map(move |&l| (i, l)))
        .collect();
    let measured: Vec<(usize, LevelMeasurement)> = jobs
        .par_iter()
        .map(|&(i, smt)| (i, run_level(cfg, &specs[i], smt)))
        .collect();
    let mut results: Vec<BenchResult> = specs
        .iter()
        .map(|s| BenchResult { name: s.name.clone(), levels: BTreeMap::new() })
        .collect();
    for (i, m) in measured {
        results[i].levels.insert(m.smt, m);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::catalog;

    #[test]
    fn run_level_produces_consistent_measurement() {
        let cfg = MachineConfig::generic(2);
        let spec = catalog::ep().scaled(0.02);
        let m = run_level(&cfg, &spec, SmtLevel::Smt1);
        assert!(m.completed, "tiny run must complete");
        assert!(m.perf > 0.0);
        assert!(m.factors.scalability >= 1.0);
        assert!(m.naive[1] > 0.0, "CPI must be positive");
    }

    #[test]
    fn run_benchmark_covers_levels_and_speedup() {
        let cfg = MachineConfig::generic(2);
        let spec = catalog::blackscholes().scaled(0.05);
        let r = run_benchmark(&cfg, &spec, &[SmtLevel::Smt1, SmtLevel::Smt2]);
        assert_eq!(r.levels.len(), 2);
        let s = r.speedup(SmtLevel::Smt2, SmtLevel::Smt1);
        assert!(s > 0.2 && s < 5.0, "speedup {s} out of sane range");
        let best = r.best_level();
        assert!(best == SmtLevel::Smt1 || best == SmtLevel::Smt2);
    }

    #[test]
    fn run_suite_parallel_matches_shape() {
        let cfg = MachineConfig::generic(2);
        let specs = vec![
            catalog::ep().scaled(0.01),
            catalog::ssca2().scaled(0.01),
        ];
        let rs = run_suite(&cfg, &specs, &[SmtLevel::Smt1, SmtLevel::Smt2]);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].name, "EP");
        for r in &rs {
            assert_eq!(r.levels.len(), 2);
        }
    }

    #[test]
    fn determinism_same_spec_same_result() {
        let cfg = MachineConfig::generic(1);
        let spec = catalog::mg().scaled(0.01);
        let a = run_level(&cfg, &spec, SmtLevel::Smt1);
        let b = run_level(&cfg, &spec, SmtLevel::Smt1);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.perf, b.perf);
        assert_eq!(a.factors.value(), b.factors.value());
    }
}
