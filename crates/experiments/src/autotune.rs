//! Stability-vs-regret evaluation of the closed-loop autotuner.
//!
//! Three questions, one table:
//!
//! 1. **Does closing the loop pay?** On multi-phase workloads no static
//!    level is right throughout; the autotuner should beat the *best*
//!    fixed level end to end.
//! 2. **How close to optimal?** The per-phase oracle
//!    ([`smt_sched::phase_oracle`]) runs every phase at its own best level
//!    with free switches — unachievable online. Regret is how far below
//!    that bound the autotuner lands.
//! 3. **Is it stable?** An adversarial oscillator alternates SMT-friendly
//!    and SMT-hostile phases; without hysteresis + cooldown the actuator
//!    thrashes. The study runs the oscillator twice — tuned policy vs. a
//!    naive no-hysteresis/no-cooldown/no-memory loop — and records both
//!    switch counts next to the policy's hard bound.

use serde::{Deserialize, Serialize};
use smt_autotune::{AutotuneConfig, AutotuneLoop, SimActuator};
use smt_sched::phase_oracle;
use smt_sim::{Error, MachineConfig, Simulation, SmtLevel};
use smt_stats::table::{fnum, Table};
use smt_workloads::{catalog, PhasedWorkload, WorkloadSpec};
use smtsm::{LevelSelector, MetricSpec, ThresholdPredictor};

/// One scenario of the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutotuneScenario {
    /// Scenario name.
    pub name: String,
    /// Phase spec names, in order.
    pub phases: Vec<String>,
    /// Built to stress switch stability rather than throughput; excluded
    /// from the mean-regret aggregate (its free-switching oracle is
    /// unachievable by construction) but held to the switch bound.
    pub adversarial: bool,
    /// End-to-end throughput of the full phased run at each fixed level.
    pub static_perf: Vec<(SmtLevel, f64)>,
    /// The best fixed level and its throughput.
    pub best_static: (SmtLevel, f64),
    /// Free-switching per-phase oracle throughput.
    pub oracle_perf: f64,
    /// The oracle's per-phase level choices.
    pub oracle_levels: Vec<SmtLevel>,
    /// Closed-loop throughput (includes every probe and drain).
    pub autotune_perf: f64,
    /// Actuated switches under the tuned policy.
    pub switches: u64,
    /// Switches a naive loop (no hysteresis, no cooldown, no memory)
    /// performs on the same workload.
    pub naive_switches: u64,
    /// Hard policy ceiling on switches: two per cooldown interval
    /// (probe→recall round trips count as one decision).
    pub switch_bound: u64,
    /// Windows the loop observed.
    pub windows: u64,
    /// Probe round trips.
    pub probes: u64,
    /// Phase-memory recalls.
    pub recalls: u64,
    /// Confirmed phase boundaries.
    pub phase_changes: u64,
    /// Cycles lost to reconfiguration drains.
    pub drain_cycles: u64,
    /// The closed-loop run finished the workload.
    pub completed: bool,
}

impl AutotuneScenario {
    /// Closed-loop throughput over the best fixed level.
    pub fn gain_vs_static(&self) -> f64 {
        if self.best_static.1 > 0.0 {
            self.autotune_perf / self.best_static.1
        } else {
            0.0
        }
    }

    /// Fraction of the oracle bound left on the table (0 = matched it).
    pub fn regret(&self) -> f64 {
        if self.oracle_perf > 0.0 {
            (1.0 - self.autotune_perf / self.oracle_perf).max(0.0)
        } else {
            0.0
        }
    }
}

/// Full study output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutotuneStudy {
    /// All scenarios.
    pub scenarios: Vec<AutotuneScenario>,
    /// Mean regret over the non-adversarial scenarios.
    pub mean_regret: f64,
    /// Best gain over the best static level across scenarios.
    pub max_gain: f64,
    /// Selector thresholds used (SMT4-vs-SMT2, SMT2-vs-SMT1).
    pub thresholds: (f64, f64),
    /// The loop policy evaluated.
    pub config: AutotuneConfig,
}

/// The study's scenario suite (phases scaled by `scale`).
///
/// The first three are realistic phase sequences (compute→contention,
/// contention→compute, compute→bandwidth→compute); the last is the
/// adversarial oscillator.
pub fn scenarios(scale: f64) -> Vec<(String, Vec<WorkloadSpec>, bool)> {
    let osc = PhasedWorkloadSpecs::alternating(
        catalog::ep().scaled(scale * 0.35),
        catalog::specjbb_contention().scaled(scale * 0.5),
        4,
    );
    vec![
        (
            "compute-then-contention".into(),
            vec![
                catalog::ep().scaled(scale),
                catalog::specjbb_contention().scaled(scale * 1.4),
            ],
            false,
        ),
        (
            "contention-then-compute".into(),
            vec![
                catalog::specjbb_contention().scaled(scale * 1.4),
                catalog::bt().scaled(scale * 0.7),
            ],
            false,
        ),
        (
            "compute-bandwidth-compute".into(),
            vec![
                catalog::ep().scaled(scale * 0.7),
                catalog::swim().scaled(scale * 0.7),
                catalog::bt().scaled(scale * 0.7),
            ],
            false,
        ),
        ("adversarial-oscillator".into(), osc, true),
    ]
}

/// Helper: the spec list of [`PhasedWorkload::alternating`] without
/// building the workload (the study needs the raw specs for the oracle).
struct PhasedWorkloadSpecs;

impl PhasedWorkloadSpecs {
    fn alternating(a: WorkloadSpec, b: WorkloadSpec, repeats: usize) -> Vec<WorkloadSpec> {
        let mut specs = Vec::with_capacity(repeats * 2);
        for _ in 0..repeats {
            specs.push(a.clone());
            specs.push(b.clone());
        }
        specs
    }
}

fn selector(t_top: f64, t_mid: f64) -> LevelSelector {
    LevelSelector::three_level(
        ThresholdPredictor::fixed(t_top),
        ThresholdPredictor::fixed(t_mid),
    )
}

fn autotune_run(
    cfg: &MachineConfig,
    name: &str,
    specs: &[WorkloadSpec],
    sel: LevelSelector,
    tune: AutotuneConfig,
    max_cycles: u64,
) -> Result<(smt_autotune::AutotuneSimReport, u64), Error> {
    let w = PhasedWorkload::new(name.to_string(), specs.to_vec());
    let top = *cfg
        .smt_levels()
        .last()
        .ok_or_else(|| Error::InvalidMachine("machine supports no SMT levels".to_string()))?;
    let sim = Simulation::new(cfg.clone(), top, w);
    let mut act = SimActuator::new(sim);
    let mut ctl = AutotuneLoop::new(sel, MetricSpec::power7(), tune)?;
    let report = act.run(&mut ctl, max_cycles)?;
    let drains = act.drain_cycles();
    Ok((report, drains))
}

/// Run the full study. `t_top`/`t_mid` are trained selector thresholds
/// (`repro autotune` trains them from the fig-6/fig-8 sweeps, exactly like
/// the Section-V scheduler demo).
pub fn run(scale: f64, t_top: f64, t_mid: f64, max_cycles: u64) -> Result<AutotuneStudy, Error> {
    let cfg = MachineConfig::power7(1);
    // Small windows relative to the scaled-down catalog sizes, so each
    // phase spans ~100 windows just as a production phase would span
    // hundreds of full-size windows. Env knobs still override.
    let tune = AutotuneConfig {
        window_cycles: 2_000,
        probe_interval: 40,
        ..AutotuneConfig::default()
    }
    .from_env()?;
    let naive = AutotuneConfig {
        hysteresis: 1,
        cooldown: 0,
        warmup: 0,
        memory: false,
        ..tune
    };
    let mut out = Vec::new();
    for (name, specs, adversarial) in scenarios(scale) {
        let phase_names: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();

        // Static baselines: the whole phased workload at each fixed level.
        let mut static_perf = Vec::new();
        for smt in cfg.smt_levels() {
            let mut sim = Simulation::new(
                cfg.clone(),
                smt,
                PhasedWorkload::new(name.clone(), specs.clone()),
            );
            let r = sim.run_until_finished(max_cycles);
            if !r.completed {
                return Err(Error::InvalidMeasurement(format!(
                    "{name}: static {smt} run did not finish within {max_cycles} cycles"
                )));
            }
            static_perf.push((smt, r.perf()));
        }
        let best_static = static_perf
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one level");

        // Free-switching per-phase oracle.
        let oracle = phase_oracle(&cfg, &specs, max_cycles)?;

        // The closed loop, tuned and naive.
        let (auto, drains) = autotune_run(
            &cfg,
            &name,
            &specs,
            selector(t_top, t_mid),
            tune,
            max_cycles,
        )?;
        if !auto.completed {
            return Err(Error::InvalidMeasurement(format!(
                "{name}: closed-loop run did not finish within {max_cycles} cycles"
            )));
        }
        let (naive_run, _) = autotune_run(
            &cfg,
            &name,
            &specs,
            selector(t_top, t_mid),
            naive,
            max_cycles,
        )?;

        // Hard policy ceiling: at most one switch per cooldown interval,
        // doubled because a probe's recall answer rides inside the
        // cooldown (a round trip is one decision).
        let windows = auto.decisions.windows;
        let switch_bound = match windows.checked_div(tune.cooldown) {
            Some(intervals) => 2 * (intervals + 1),
            None => windows,
        };

        out.push(AutotuneScenario {
            name,
            phases: phase_names,
            adversarial,
            static_perf,
            best_static,
            oracle_perf: oracle.perf,
            oracle_levels: oracle.best_levels(),
            autotune_perf: auto.perf,
            switches: auto.decisions.switches,
            naive_switches: naive_run.decisions.switches,
            switch_bound,
            windows,
            probes: auto.decisions.probes,
            recalls: auto.decisions.recalls,
            phase_changes: auto.decisions.phase_changes,
            drain_cycles: drains,
            completed: auto.completed,
        });
    }

    let honest: Vec<&AutotuneScenario> = out.iter().filter(|s| !s.adversarial).collect();
    let mean_regret = if honest.is_empty() {
        0.0
    } else {
        honest.iter().map(|s| s.regret()).sum::<f64>() / honest.len() as f64
    };
    let max_gain = out
        .iter()
        .map(|s| s.gain_vs_static())
        .fold(0.0f64, f64::max);
    Ok(AutotuneStudy {
        scenarios: out,
        mean_regret,
        max_gain,
        thresholds: (t_top, t_mid),
        config: tune,
    })
}

impl AutotuneStudy {
    /// Render the stability-vs-regret table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "scenario",
            "best static",
            "oracle",
            "autotune",
            "gain",
            "regret",
            "switches",
            "naive",
            "bound",
            "recalls",
        ]);
        for s in &self.scenarios {
            t.row(vec![
                if s.adversarial {
                    format!("{} *", s.name)
                } else {
                    s.name.clone()
                },
                format!("{} ({})", fnum(s.best_static.1, 2), s.best_static.0),
                fnum(s.oracle_perf, 2),
                fnum(s.autotune_perf, 2),
                format!("{:+.1}%", (s.gain_vs_static() - 1.0) * 100.0),
                format!("{:.1}%", s.regret() * 100.0),
                s.switches.to_string(),
                s.naive_switches.to_string(),
                s.switch_bound.to_string(),
                s.recalls.to_string(),
            ]);
        }
        format!(
            "autotune: closed-loop phase-aware SMT selection \
             (thresholds {:.3}/{:.3}; perf = work/cycle)\n\n{}\n\
             mean regret vs per-phase oracle (non-adversarial): {:.1}%   \
             best gain over best static level: {:+.1}%\n\
             * adversarial oscillator: judged on switch stability, not regret\n",
            self.thresholds.0,
            self.thresholds.1,
            t.render(),
            self.mean_regret * 100.0,
            (self.max_gain - 1.0) * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "debug aid"]
    fn dump_decision_logs() {
        let cfg = MachineConfig::power7(1);
        let tune = AutotuneConfig {
            window_cycles: 2_000,
            probe_interval: 40,
            ..AutotuneConfig::default()
        };
        for (name, specs, _) in scenarios(0.5) {
            let (auto, drains) = autotune_run(
                &cfg,
                &name,
                &specs,
                selector(0.10, 0.15),
                tune,
                4_000_000_000,
            )
            .unwrap();
            let oracle = phase_oracle(&cfg, &specs, 4_000_000_000).unwrap();
            for p in &oracle.phases {
                let per: Vec<String> = p
                    .report
                    .levels
                    .iter()
                    .map(|l| format!("{}={:.2}", l.smt, l.result.perf()))
                    .collect();
                eprintln!(
                    "  phase {} best {}: {}",
                    p.phase,
                    p.report.best,
                    per.join(" ")
                );
            }
            eprintln!(
                "=== {name}: windows={} perf={:.3} drains={drains} oracle={:.3}\n{}",
                auto.decisions.windows,
                auto.perf,
                oracle.perf,
                serde_json::to_string_pretty(&auto.decisions.decisions).unwrap()
            );
        }
    }

    #[test]
    #[ignore = "debug aid"]
    fn dump_steady_metrics() {
        use smt_workloads::SyntheticWorkload;
        use smtsm::OnlineSampler;
        for (name, spec) in [
            ("blackscholes", catalog::blackscholes().scaled(0.5)),
            ("ep", catalog::ep().scaled(0.5)),
            ("swim", catalog::swim().scaled(0.35)),
            ("bt", catalog::bt().scaled(0.35)),
            (
                "specjbb_contention",
                catalog::specjbb_contention().scaled(0.7),
            ),
        ] {
            let mut sim = Simulation::new(
                MachineConfig::power7(1),
                SmtLevel::Smt4,
                SyntheticWorkload::new(spec),
            );
            let mut s = OnlineSampler::new(MetricSpec::power7(), 2_000, 0.6);
            let mut vals = Vec::new();
            for _ in 0..40 {
                if sim.finished() {
                    break;
                }
                let m = sim.measure_window(2_000);
                let (metric, _) = s.push_window(&m);
                vals.push(format!("{metric:.3}"));
            }
            eprintln!("{name}: {}", vals.join(" "));
        }
    }

    #[test]
    fn scenarios_are_well_formed() {
        let sc = scenarios(0.1);
        assert_eq!(sc.len(), 4);
        let adversarial: Vec<_> = sc.iter().filter(|(_, _, a)| *a).collect();
        assert_eq!(adversarial.len(), 1);
        assert_eq!(adversarial[0].1.len(), 8, "oscillator alternates 4x2");
        for (name, specs, _) in &sc {
            assert!(!name.is_empty());
            assert!(specs.len() >= 2);
            for s in specs {
                s.validate().unwrap();
            }
        }
    }

    #[test]
    #[ignore = "slow: full autotune study; run with --ignored"]
    fn study_meets_the_acceptance_bars() {
        let study = run(0.5, 0.10, 0.15, 4_000_000_000).unwrap();
        eprintln!("{}", study.render());
        assert!(
            study.max_gain >= 1.10,
            "closed loop must beat best static by >= 10% somewhere, got {:+.1}%",
            (study.max_gain - 1.0) * 100.0
        );
        assert!(
            study.mean_regret <= 0.02,
            "mean regret vs per-phase oracle must be <= 2%, got {:.1}%",
            study.mean_regret * 100.0
        );
        for s in &study.scenarios {
            assert!(
                s.switches <= s.switch_bound,
                "{}: {} switches exceed the policy bound {}",
                s.name,
                s.switches,
                s.switch_bound
            );
        }
        let osc = study
            .scenarios
            .iter()
            .find(|s| s.adversarial)
            .expect("oscillator present");
        assert!(
            osc.switches <= osc.naive_switches,
            "hysteresis must not switch more than the naive loop"
        );
    }
}
