//! The paper's figures, one function per artifact.
//!
//! Scatter-style figures (6, 8-15) instantiate [`ScatterFigure`]; the
//! remaining artifacts (Figs. 1, 2, 7, 16, 17, Table I, the success-rate
//! summary) have bespoke result types. Every function takes pre-collected
//! [`SuiteData`] so one suite collection feeds all its figures.

use crate::scatter::ScatterFigure;
use crate::suite::{Machine, SuiteData};
use serde::{Deserialize, Serialize};
use smt_sim::{Error, SmtLevel};
use smt_stats::classify::SpeedupCase;
use smt_stats::corr::pearson;
use smt_stats::gini::GiniSweep;
use smt_stats::table::{fnum, Table};
use smt_workloads::catalog;
use smtsm::{NaiveMetric, PpiSweep};

fn check_machine(data: &SuiteData, want: Machine, fig: &str) -> Result<(), Error> {
    if data.machine == want {
        Ok(())
    } else {
        Err(Error::InvalidMeasurement(format!(
            "{fig} needs {:?} data, got {:?}",
            want, data.machine
        )))
    }
}

// ---------------------------------------------------------------------------
// Fig. 1 — motivating bar chart
// ---------------------------------------------------------------------------

/// Fig. 1: SMT1-normalized performance of Equake, MG, and EP at SMT1 and
/// SMT4 on the 8-core machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    /// `(benchmark, perf@SMT4 / perf@SMT1)`; the SMT1 bar is 1.0 by
    /// construction.
    pub bars: Vec<(String, f64)>,
}

/// Generate Fig. 1 from single-chip POWER7-like data.
pub fn fig1(data: &SuiteData) -> Result<Fig1, Error> {
    check_machine(data, Machine::Power7OneChip, "fig1")?;
    let bars = ["Equake", "MG", "EP"]
        .iter()
        .map(|name| {
            let r = data.get(name).ok_or_else(|| {
                Error::InvalidMeasurement(format!("fig1 benchmark {name} missing"))
            })?;
            Ok((name.to_string(), r.speedup(SmtLevel::Smt4, SmtLevel::Smt1)?))
        })
        .collect::<Result<Vec<_>, Error>>()?;
    Ok(Fig1 { bars })
}

impl Fig1 {
    /// Render as a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["application", "SMT1", "SMT4 (normalized)"]);
        for (name, s) in &self.bars {
            t.row(vec![name.clone(), "1.000".to_string(), fnum(*s, 3)]);
        }
        format!(
            "fig1: Performance with SMT1 vs SMT4, normalized to SMT1 \
             (8 threads @SMT1, 32 threads @SMT4)\n\n{}",
            t.render()
        )
    }
}

// ---------------------------------------------------------------------------
// Fig. 2 — naive metrics carry no signal
// ---------------------------------------------------------------------------

/// One panel of Fig. 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Panel {
    /// Which naive metric.
    pub metric: NaiveMetric,
    /// `(benchmark, metric value @SMT4, SMT4/SMT1 speedup)`.
    pub points: Vec<(String, f64, f64)>,
    /// Pearson correlation with the speedup.
    pub pearson_r: Option<f64>,
    /// Best prediction accuracy any single threshold on this metric can
    /// reach, trying both directions ("high value means prefer SMT1" and
    /// the inverse). The paper's point is that no such threshold works.
    pub best_accuracy: f64,
}

/// Fig. 2: the four naive metrics vs. SMT4/SMT1 speedup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Panels in the paper's order.
    pub panels: Vec<Fig2Panel>,
}

/// Generate Fig. 2 from single-chip POWER7-like data.
pub fn fig2(data: &SuiteData) -> Result<Fig2, Error> {
    check_machine(data, Machine::Power7OneChip, "fig2")?;
    let panels = NaiveMetric::ALL
        .iter()
        .map(|&metric| {
            let points: Vec<(String, f64, f64)> = data
                .results
                .iter()
                .map(|r| {
                    Ok((
                        r.name.clone(),
                        r.naive_at(SmtLevel::Smt4, metric)?,
                        r.speedup(SmtLevel::Smt4, SmtLevel::Smt1)?,
                    ))
                })
                .collect::<Result<Vec<_>, Error>>()?;
            let xs: Vec<f64> = points.iter().map(|p| p.1).collect();
            let ys: Vec<f64> = points.iter().map(|p| p.2).collect();
            let best_accuracy = [1.0f64, -1.0]
                .into_iter()
                .map(|dir| {
                    let cases: Vec<SpeedupCase> = points
                        .iter()
                        .map(|(n, v, s)| SpeedupCase::new(n.clone(), dir * v, *s))
                        .collect();
                    smtsm::ThresholdPredictor::train_gini(&cases).accuracy(&cases)
                })
                .fold(0.0, f64::max);
            Ok(Fig2Panel {
                metric,
                points,
                pearson_r: pearson(&xs, &ys),
                best_accuracy,
            })
        })
        .collect::<Result<Vec<_>, Error>>()?;
    Ok(Fig2 { panels })
}

impl Fig2 {
    /// The largest |r| over the four panels — the paper's claim is that
    /// this is small ("no correlation").
    pub fn max_abs_correlation(&self) -> f64 {
        self.panels
            .iter()
            .filter_map(|p| p.pearson_r)
            .map(f64::abs)
            .fold(0.0, f64::max)
    }

    /// Render all four panels.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "fig2: SMT4/SMT1 speedup vs. naive counter metrics (no usable correlation)\n",
        );
        for p in &self.panels {
            out.push_str(&format!(
                "\n-- {} (pearson r = {}, best single-threshold accuracy {:.1}%) --\n",
                p.metric.label(),
                p.pearson_r
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "n/a".into()),
                p.best_accuracy * 100.0
            ));
            let mut t = Table::new(vec!["benchmark", "value", "speedup"]);
            for (name, v, s) in &p.points {
                t.row(vec![name.clone(), fnum(*v, 3), fnum(*s, 3)]);
            }
            out.push_str(&t.render());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Table I — benchmark inventory
// ---------------------------------------------------------------------------

/// Table I: the evaluated benchmarks.
pub fn table1() -> Table {
    let mut t = Table::new(vec!["Label", "Suite", "Description"]).with_aligns(vec![
        smt_stats::table::Align::Left,
        smt_stats::table::Align::Left,
        smt_stats::table::Align::Left,
    ]);
    let mut seen = std::collections::HashSet::new();
    for spec in catalog::power7_suite()
        .into_iter()
        .chain(catalog::nehalem_suite())
    {
        if seen.insert(spec.name.clone()) {
            t.row(vec![spec.name, spec.suite, spec.description]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Figs. 6, 8-15 — the scatter family
// ---------------------------------------------------------------------------

/// Fig. 6: SMT4/SMT1 speedup vs. metric @SMT4 (single chip).
pub fn fig6(data: &SuiteData) -> Result<ScatterFigure, Error> {
    check_machine(data, Machine::Power7OneChip, "fig6")?;
    ScatterFigure::evaluate(
        "fig6",
        "SMT4/SMT1 speedup vs. SMTsm @SMT4 — 8-core POWER7-like chip",
        data,
        SmtLevel::Smt4,
        SmtLevel::Smt4,
        SmtLevel::Smt1,
    )
}

/// Fig. 8: SMT4/SMT2 speedup vs. metric @SMT4 (single chip).
pub fn fig8(data: &SuiteData) -> Result<ScatterFigure, Error> {
    check_machine(data, Machine::Power7OneChip, "fig8")?;
    ScatterFigure::evaluate(
        "fig8",
        "SMT4/SMT2 speedup vs. SMTsm @SMT4 — 8-core POWER7-like chip",
        data,
        SmtLevel::Smt4,
        SmtLevel::Smt4,
        SmtLevel::Smt2,
    )
}

/// Fig. 9: SMT2/SMT1 speedup vs. metric @SMT2 (single chip) — the paper
/// finds an ambiguous middle band here.
pub fn fig9(data: &SuiteData) -> Result<ScatterFigure, Error> {
    check_machine(data, Machine::Power7OneChip, "fig9")?;
    ScatterFigure::evaluate(
        "fig9",
        "SMT2/SMT1 speedup vs. SMTsm @SMT2 — 8-core POWER7-like chip",
        data,
        SmtLevel::Smt2,
        SmtLevel::Smt2,
        SmtLevel::Smt1,
    )
}

/// Fig. 10: SMT2/SMT1 speedup vs. metric @SMT2 on the Nehalem-like machine
/// (with Streamcluster as the known outlier).
pub fn fig10(data: &SuiteData) -> Result<ScatterFigure, Error> {
    check_machine(data, Machine::Nehalem, "fig10")?;
    ScatterFigure::evaluate(
        "fig10",
        "SMT2/SMT1 speedup vs. SMTsm @SMT2 — quad-core Nehalem-like system",
        data,
        SmtLevel::Smt2,
        SmtLevel::Smt2,
        SmtLevel::Smt1,
    )
}

/// Fig. 11: SMT4/SMT1 speedup vs. metric measured at SMT1 — demonstrates
/// the metric breaks down at the lowest level (POWER7-like).
pub fn fig11(data: &SuiteData) -> Result<ScatterFigure, Error> {
    check_machine(data, Machine::Power7OneChip, "fig11")?;
    ScatterFigure::evaluate(
        "fig11",
        "SMT4/SMT1 speedup vs. SMTsm @SMT1 — metric measured too low breaks down",
        data,
        SmtLevel::Smt1,
        SmtLevel::Smt4,
        SmtLevel::Smt1,
    )
}

/// Fig. 12: SMT2/SMT1 speedup vs. metric @SMT1 on the Nehalem-like machine.
pub fn fig12(data: &SuiteData) -> Result<ScatterFigure, Error> {
    check_machine(data, Machine::Nehalem, "fig12")?;
    ScatterFigure::evaluate(
        "fig12",
        "SMT2/SMT1 speedup vs. SMTsm @SMT1 — Nehalem-like, breaks down at SMT1",
        data,
        SmtLevel::Smt1,
        SmtLevel::Smt2,
        SmtLevel::Smt1,
    )
}

/// Fig. 13: SMT4/SMT1 vs. metric @SMT4 on two chips (16 cores).
pub fn fig13(data: &SuiteData) -> Result<ScatterFigure, Error> {
    check_machine(data, Machine::Power7TwoChip, "fig13")?;
    ScatterFigure::evaluate(
        "fig13",
        "SMT4/SMT1 speedup vs. SMTsm @SMT4 — two 8-core chips (NUMA)",
        data,
        SmtLevel::Smt4,
        SmtLevel::Smt4,
        SmtLevel::Smt1,
    )
}

/// Fig. 14: SMT4/SMT2 vs. metric @SMT4 on two chips.
pub fn fig14(data: &SuiteData) -> Result<ScatterFigure, Error> {
    check_machine(data, Machine::Power7TwoChip, "fig14")?;
    ScatterFigure::evaluate(
        "fig14",
        "SMT4/SMT2 speedup vs. SMTsm @SMT4 — two 8-core chips (NUMA)",
        data,
        SmtLevel::Smt4,
        SmtLevel::Smt4,
        SmtLevel::Smt2,
    )
}

/// Fig. 15: SMT2/SMT1 vs. metric @SMT2 on two chips.
pub fn fig15(data: &SuiteData) -> Result<ScatterFigure, Error> {
    check_machine(data, Machine::Power7TwoChip, "fig15")?;
    ScatterFigure::evaluate(
        "fig15",
        "SMT2/SMT1 speedup vs. SMTsm @SMT2 — two 8-core chips (NUMA)",
        data,
        SmtLevel::Smt2,
        SmtLevel::Smt2,
        SmtLevel::Smt1,
    )
}

// ---------------------------------------------------------------------------
// Fig. 7 — instruction mixes
// ---------------------------------------------------------------------------

/// Fig. 7: observed instruction mixes of five representative benchmarks,
/// alongside the ideal POWER7 SMT mix and each benchmark's SMT4/SMT1
/// speedup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    /// `(name, [load, store, branch+cr, fx, vs] fractions, speedup)` sorted
    /// by descending speedup as in the paper.
    pub rows: Vec<(String, [f64; 5], f64)>,
    /// The ideal mix vector.
    pub ideal: [f64; 5],
}

/// Generate Fig. 7 from single-chip data. Uses the *specified* mixes of the
/// five catalog entries plus the measured speedups (spin-loop overhead
/// means the observed SSCA2/SPECjbb-contention mixes are even more skewed;
/// the measured-mix variant is available from the fig6 data directly).
pub fn fig7(data: &SuiteData) -> Result<Fig7, Error> {
    check_machine(data, Machine::Power7OneChip, "fig7")?;
    let mut rows: Vec<(String, [f64; 5], f64)> = catalog::fig7_five()
        .into_iter()
        .map(|spec| {
            let f = spec.mix.as_fractions();
            let five = [f[0], f[1], f[2] + f[3], f[4], f[5]];
            let speedup = data
                .get(&spec.name)
                .ok_or_else(|| {
                    Error::InvalidMeasurement(format!("fig7 benchmark {} missing", spec.name))
                })?
                .speedup(SmtLevel::Smt4, SmtLevel::Smt1)?;
            Ok((spec.name, five, speedup))
        })
        .collect::<Result<Vec<_>, Error>>()?;
    rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    Ok(Fig7 {
        rows,
        ideal: smtsm::MetricSpec::p7_ideal(),
    })
}

impl Fig7 {
    /// Render the mix table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "benchmark",
            "%Loads",
            "%Stores",
            "%Branches",
            "%FXU",
            "%VSU",
            "SMT4/SMT1",
        ]);
        for (name, f, s) in &self.rows {
            t.row(vec![
                name.clone(),
                fnum(f[0] * 100.0, 1),
                fnum(f[1] * 100.0, 1),
                fnum(f[2] * 100.0, 1),
                fnum(f[3] * 100.0, 1),
                fnum(f[4] * 100.0, 1),
                fnum(*s, 2),
            ]);
        }
        let i = &self.ideal;
        t.row(vec![
            "idealP7SMTmix".to_string(),
            fnum(i[0] * 100.0, 1),
            fnum(i[1] * 100.0, 1),
            fnum(i[2] * 100.0, 1),
            fnum(i[3] * 100.0, 1),
            fnum(i[4] * 100.0, 1),
            "-".to_string(),
        ]);
        format!(
            "fig7: Instruction mix of 5 benchmarks vs. the ideal SMT mix \
             (speedup falls as the mix gets less diverse)\n\n{}",
            t.render()
        )
    }
}

// ---------------------------------------------------------------------------
// Figs. 16 & 17 — threshold selection curves
// ---------------------------------------------------------------------------

/// Fig. 16: Gini impurity vs. candidate separator, from the fig-6 sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig16 {
    /// `(separator, overall impurity)` series.
    pub curve: Vec<(f64, f64)>,
    /// Minimum impurity.
    pub min_impurity: f64,
    /// Optimal separator range.
    pub optimal_range: (f64, f64),
}

/// Generate Fig. 16 from a fig-6 scatter.
pub fn fig16(fig6: &ScatterFigure) -> Fig16 {
    let sweep = GiniSweep::run(
        &fig6
            .points
            .iter()
            .map(|p| smt_stats::gini::LabeledPoint::from_speedup(p.metric, p.speedup))
            .collect::<Vec<_>>(),
    );
    Fig16 {
        curve: sweep
            .separators
            .iter()
            .copied()
            .zip(sweep.impurities.iter().copied())
            .collect(),
        min_impurity: sweep.min_impurity,
        optimal_range: sweep.optimal_range,
    }
}

impl Fig16 {
    /// Render the impurity curve.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["separator", "impurity"]);
        for (s, i) in &self.curve {
            t.row(vec![fnum(*s, 4), fnum(*i, 4)]);
        }
        format!(
            "fig16: overall Gini impurity vs. separator (min {:.3} over \
             optimal range {:.4}..{:.4})\n\n{}",
            self.min_impurity,
            self.optimal_range.0,
            self.optimal_range.1,
            t.render()
        )
    }
}

/// Fig. 17: average percentage performance improvement vs. threshold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig17 {
    /// `(threshold, average % improvement over the SMT4 default)`.
    pub curve: Vec<(f64, f64)>,
    /// Best threshold.
    pub best_threshold: f64,
    /// Improvement at the best threshold.
    pub best_improvement: f64,
    /// Threshold range achieving at least 80% of the best improvement
    /// (the broad plateau the paper highlights).
    pub plateau: (f64, f64),
}

/// Generate Fig. 17 from a fig-6 scatter.
pub fn fig17(fig6: &ScatterFigure) -> Fig17 {
    let cases: Vec<SpeedupCase> = fig6.cases();
    let sweep = PpiSweep::run(&cases);
    Fig17 {
        curve: sweep
            .thresholds
            .iter()
            .copied()
            .zip(sweep.improvements.iter().copied())
            .collect(),
        best_threshold: sweep.best_threshold,
        best_improvement: sweep.best_improvement,
        plateau: sweep.plateau(0.8),
    }
}

impl Fig17 {
    /// Render the PPI curve.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec!["threshold", "avg improvement %"]);
        for (s, i) in &self.curve {
            t.row(vec![fnum(*s, 4), fnum(*i, 2)]);
        }
        format!(
            "fig17: average SMT4->best %% improvement vs. SMTsm threshold \
             (best {:.1}% at {:.4}; 80%-plateau {:.4}..{:.4})\n\n{}",
            self.best_improvement,
            self.best_threshold,
            self.plateau.0,
            self.plateau.1,
            t.render()
        )
    }
}

// ---------------------------------------------------------------------------
// Success-rate summary (Sections IV & VII)
// ---------------------------------------------------------------------------

/// The headline success rates: 93% POWER7, 86% Nehalem, ~90% overall in
/// the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuccessRates {
    /// POWER7-like accuracy (fig-6 sample, trained threshold).
    pub power7: f64,
    /// Nehalem-like accuracy (fig-10 sample).
    pub nehalem: f64,
    /// Pooled accuracy.
    pub overall: f64,
    /// POWER7-like threshold used.
    pub p7_threshold: f64,
    /// Nehalem-like threshold used.
    pub nhm_threshold: f64,
}

/// Compute the success-rate summary from the two scatter figures.
pub fn success_rates(fig6: &ScatterFigure, fig10: &ScatterFigure) -> SuccessRates {
    let n_p7 = fig6.points.len() as f64;
    let n_nhm = fig10.points.len() as f64;
    SuccessRates {
        power7: fig6.accuracy,
        nehalem: fig10.accuracy,
        overall: (fig6.accuracy * n_p7 + fig10.accuracy * n_nhm) / (n_p7 + n_nhm),
        p7_threshold: fig6.threshold,
        nhm_threshold: fig10.threshold,
    }
}

impl SuccessRates {
    /// Render the summary.
    pub fn render(&self) -> String {
        format!(
            "Prediction success rates (paper: 93% POWER7, 86% Nehalem, ~90% overall)\n\
             POWER7-like : {:.1}% (threshold {:.4})\n\
             Nehalem-like: {:.1}% (threshold {:.4})\n\
             Overall     : {:.1}%\n",
            self.power7 * 100.0,
            self.p7_threshold,
            self.nehalem * 100.0,
            self.nhm_threshold,
            self.overall * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{BenchResult, LevelMeasurement};
    use smtsm::SmtsmFactors;
    use std::collections::BTreeMap;

    fn lvl(smt: SmtLevel, perf: f64, metric: f64, naive: [f64; 4]) -> LevelMeasurement {
        LevelMeasurement {
            smt,
            perf,
            cycles: 1000,
            completed: true,
            factors: SmtsmFactors {
                mix_deviation: metric,
                disp_held: 1.0,
                scalability: 1.0,
            },
            naive,
        }
    }

    fn p7_data() -> SuiteData {
        let results = catalog::power7_suite()
            .into_iter()
            .enumerate()
            .map(|(k, spec)| {
                // Deterministic synthetic pattern: even k gain, odd k lose,
                // with metric tracking the label.
                let s41 = if k % 2 == 0 { 1.5 } else { 0.7 };
                let metric = if k % 2 == 0 { 0.02 } else { 0.2 };
                let mut levels = BTreeMap::new();
                levels.insert(
                    SmtLevel::Smt1,
                    lvl(SmtLevel::Smt1, 1.0, metric, [1.0, 2.0, 0.5, 0.3]),
                );
                levels.insert(
                    SmtLevel::Smt2,
                    lvl(
                        SmtLevel::Smt2,
                        (1.0 + s41) / 2.0,
                        metric,
                        [1.0, 2.0, 0.5, 0.3],
                    ),
                );
                levels.insert(
                    SmtLevel::Smt4,
                    lvl(SmtLevel::Smt4, s41, metric, [k as f64, 2.0, 0.5, 0.3]),
                );
                BenchResult {
                    name: spec.name,
                    levels,
                }
            })
            .collect();
        SuiteData {
            machine: Machine::Power7OneChip,
            scale: 1.0,
            results,
        }
    }

    #[test]
    fn fig1_extracts_the_trio() {
        let f = fig1(&p7_data()).unwrap();
        assert_eq!(f.bars.len(), 3);
        assert_eq!(f.bars[0].0, "Equake");
        let s = f.render();
        assert!(s.contains("Equake") && s.contains("EP"));
    }

    #[test]
    fn fig2_has_four_panels_with_all_benchmarks() {
        let f = fig2(&p7_data()).unwrap();
        assert_eq!(f.panels.len(), 4);
        for p in &f.panels {
            assert_eq!(p.points.len(), 28);
        }
        assert!(f.render().contains("CPI"));
        assert!(f.max_abs_correlation() <= 1.0);
    }

    #[test]
    fn table1_lists_all_unique_benchmarks() {
        let t = table1();
        assert!(t.len() >= 28, "table1 rows: {}", t.len());
        let csv = t.to_csv();
        assert!(csv.contains("Equake"));
        assert!(csv.contains("x264"));
    }

    #[test]
    fn fig6_and_derived_threshold_figures_agree() {
        let data = p7_data();
        let f6 = fig6(&data).unwrap();
        assert_eq!(f6.accuracy, 1.0, "clean synthetic data separates");
        let f16 = fig16(&f6);
        assert_eq!(f16.min_impurity, 0.0);
        assert!(f16.optimal_range.0 <= f6.threshold && f6.threshold <= f16.optimal_range.1);
        let f17 = fig17(&f6);
        assert!(f17.best_improvement > 0.0);
        assert!(f17.curve.len() == f16.curve.len());
        assert!(f16.render().contains("impurity"));
        assert!(f17.render().contains("improvement"));
    }

    #[test]
    fn fig7_sorted_by_speedup() {
        let f = fig7(&p7_data()).unwrap();
        assert_eq!(f.rows.len(), 5);
        for w in f.rows.windows(2) {
            assert!(w[0].2 >= w[1].2, "not sorted by speedup");
        }
        // Each mix row sums to 1.
        for (_, five, _) in &f.rows {
            let s: f64 = five.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert!(f.render().contains("idealP7SMTmix"));
    }

    #[test]
    fn wrong_machine_is_rejected() {
        let data = p7_data();
        let res = fig10(&data);
        assert!(res.is_err(), "fig10 must reject POWER7 data");
        assert!(res.unwrap_err().to_string().contains("fig10"));
    }

    #[test]
    fn success_rates_pool_correctly() {
        let data = p7_data();
        let f6 = fig6(&data).unwrap();
        // Reuse the p7 scatter as a stand-in "fig10" with identical size.
        let rates = success_rates(&f6, &f6);
        assert_eq!(rates.power7, rates.nehalem);
        assert!((rates.overall - rates.power7).abs() < 1e-12);
        assert!(rates.render().contains("Overall"));
    }
}
