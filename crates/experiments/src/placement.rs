//! Placement-allocator accuracy experiment.
//!
//! For each placement scenario suite, simulate every feasible placement
//! (the oracle), then solve the same instance with each search strategy
//! and report the *regret* of the predicted-best placement — how far the
//! measured throughput of the allocator's choice falls below the
//! oracle-best. The acceptance gate for the allocator is a mean regret
//! of at most 10% with the exhaustive search.

use serde::{Deserialize, Serialize};
use smt_sched::allocator::{placement_oracle, scenarios, AllocatorConfig, SearchStrategy};
use smt_sim::Error;
use smt_stats::table::{fnum, Table};
use smtsm::MetricSpec;

/// One (scenario, strategy) result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementRow {
    /// Scenario name.
    pub scenario: String,
    /// Search strategy solved with.
    pub strategy: String,
    /// Model-predicted throughput of the chosen placement (work/cycle).
    pub predicted: f64,
    /// Simulator-measured throughput of the chosen placement.
    pub measured: f64,
    /// Best measured throughput over every feasible placement.
    pub oracle_best: f64,
    /// `1 - measured / oracle_best`.
    pub regret: f64,
    /// Feasible placements the oracle simulated.
    pub candidates: usize,
}

/// The full allocator-accuracy study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementStudy {
    /// One row per (scenario, strategy), scenario-major.
    pub rows: Vec<PlacementRow>,
    /// Mean regret per strategy, in [`strategies`] order.
    pub mean_regret: Vec<(String, f64)>,
}

/// The strategies compared.
pub fn strategies() -> Vec<SearchStrategy> {
    vec![
        SearchStrategy::Greedy,
        SearchStrategy::LocalSearch,
        SearchStrategy::Exhaustive,
    ]
}

/// Run the study over the three scenario suites.
pub fn run() -> Result<PlacementStudy, Error> {
    let spec = MetricSpec::power7();
    let mut rows = Vec::new();
    for sc in scenarios::all() {
        let sigs = sc.signatures(&spec);
        let make_jobs = || sc.make_jobs();
        let oracle = placement_oracle(&sc.cfg, &make_jobs, sc.max_cycles);
        let best = oracle.best_perf();
        for strategy in strategies() {
            let outcome = AllocatorConfig::for_machine(sc.cfg.clone())
                .threads(sigs.clone())
                .search(strategy)
                .solve()?;
            let measured = oracle.perf_of(&outcome.placement).ok_or_else(|| {
                Error::InvalidMeasurement(format!(
                    "{}: {strategy:?} produced a placement outside the oracle set",
                    sc.name
                ))
            })?;
            rows.push(PlacementRow {
                scenario: sc.name.to_string(),
                strategy: format!("{strategy:?}"),
                predicted: outcome.predicted,
                measured,
                oracle_best: best,
                regret: oracle.regret(&outcome.placement).unwrap_or(1.0),
                candidates: oracle.candidates.len(),
            });
        }
    }
    let mean_regret = strategies()
        .iter()
        .map(|s| {
            let name = format!("{s:?}");
            let rs: Vec<f64> = rows
                .iter()
                .filter(|r| r.strategy == name)
                .map(|r| r.regret)
                .collect();
            let mean = rs.iter().sum::<f64>() / rs.len().max(1) as f64;
            (name, mean)
        })
        .collect();
    Ok(PlacementStudy { rows, mean_regret })
}

impl PlacementStudy {
    /// Mean regret of the exhaustive search (the acceptance-gated number).
    pub fn exhaustive_mean_regret(&self) -> f64 {
        self.mean_regret
            .iter()
            .find(|(n, _)| n == "Exhaustive")
            .map(|(_, r)| *r)
            .unwrap_or(1.0)
    }

    /// Render as a table plus per-strategy means.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "scenario",
            "strategy",
            "predicted",
            "measured",
            "oracle best",
            "regret",
            "candidates",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.scenario.clone(),
                r.strategy.clone(),
                fnum(r.predicted, 4),
                fnum(r.measured, 4),
                fnum(r.oracle_best, 4),
                format!("{:.1}%", r.regret * 100.0),
                r.candidates.to_string(),
            ]);
        }
        let means: Vec<String> = self
            .mean_regret
            .iter()
            .map(|(n, r)| format!("{n} {:.1}%", r * 100.0))
            .collect();
        format!(
            "placement: allocator vs. simulate-every-placement oracle\n\n{}\nmean regret: {}\n",
            t.render(),
            means.join(", ")
        )
    }
}
