//! Integration tests for the batch engine: cache round-trips, parallel vs
//! serial determinism, and per-job fault isolation.

use smt_experiments::{
    Engine, JobError, JobOutcome, ProgressEvent, ProgressSink, ProtocolConfig, ResultCache,
    RunRequest,
};
use smt_sim::{MachineConfig, SmtLevel};
use smt_workloads::catalog;
use std::path::PathBuf;
use std::sync::Mutex;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-engine-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_plan() -> smt_experiments::RunPlan {
    RunRequest::new(MachineConfig::generic(2))
        .benchmarks([catalog::ep().scaled(0.01), catalog::ssca2().scaled(0.01)])
        .levels([SmtLevel::Smt1, SmtLevel::Smt2])
        .plan()
        .expect("valid plan")
}

#[test]
fn second_run_is_served_entirely_from_cache() {
    let dir = tmp_dir("roundtrip");
    let plan = tiny_plan();

    let cold = Engine::new().with_cache(ResultCache::new(&dir)).run(&plan);
    assert!(cold.all_ok(), "cold sweep failed: {:?}", cold.errors);
    assert_eq!(cold.metrics.jobs_run, 4);
    assert_eq!(cold.metrics.cache_hits, 0);
    assert_eq!(cold.metrics.cache_errors, 0);
    assert_eq!(ResultCache::new(&dir).len(), 4, "every job persisted");

    // A fresh engine over the same directory must not simulate anything.
    let warm = Engine::new().with_cache(ResultCache::new(&dir)).run(&plan);
    assert!(warm.all_ok());
    assert_eq!(warm.metrics.cache_hits, 4);
    assert_eq!(warm.metrics.jobs_run, 0);
    assert_eq!(warm.metrics.cycles_simulated, 0);

    // The reloaded measurements are the originals, bit for bit.
    for (a, b) in cold.results.iter().zip(&warm.results) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.levels.len(), b.levels.len());
        for (level, ma) in &a.levels {
            let mb = &b.levels[level];
            assert_eq!(ma.perf, mb.perf, "{} @ {level}", a.name);
            assert_eq!(ma.cycles, mb.cycles);
            assert_eq!(ma.completed, mb.completed);
            assert_eq!(ma.factors.value(), mb.factors.value());
            assert_eq!(ma.naive, mb.naive);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn changing_the_protocol_invalidates_the_cache() {
    let dir = tmp_dir("invalidate");
    let plan = tiny_plan();
    let engine = Engine::new().with_cache(ResultCache::new(&dir));
    engine.run(&plan);

    let other = RunRequest::new(MachineConfig::generic(2))
        .benchmarks([catalog::ep().scaled(0.01), catalog::ssca2().scaled(0.01)])
        .levels([SmtLevel::Smt1, SmtLevel::Smt2])
        .protocol(ProtocolConfig {
            window_cycles: 40_000,
            ..ProtocolConfig::default()
        })
        .plan()
        .expect("valid plan");
    let sweep = engine.run(&other);
    assert_eq!(
        sweep.metrics.cache_hits, 0,
        "protocol change must re-measure"
    );
    assert_eq!(sweep.metrics.jobs_run, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_and_serial_sweeps_are_identical() {
    let plan = tiny_plan();
    let par = Engine::new().run(&plan);
    let ser = Engine::new().serial(true).run(&plan);
    assert!(par.all_ok() && ser.all_ok());
    assert_eq!(par.results.len(), ser.results.len());
    for (a, b) in par.results.iter().zip(&ser.results) {
        assert_eq!(a.name, b.name);
        for (level, ma) in &a.levels {
            let mb = &b.levels[level];
            assert_eq!(ma.perf, mb.perf, "{} @ {level} diverged", a.name);
            assert_eq!(ma.cycles, mb.cycles);
            assert_eq!(ma.factors.value(), mb.factors.value());
        }
    }
}

#[test]
fn one_capped_job_does_not_poison_the_sweep() {
    let dir = tmp_dir("faults");
    // 50k cycles is plenty for tiny EP (~17k) and far too little for the
    // larger CG job (~400k): exactly one job must fail.
    let protocol = ProtocolConfig {
        warmup_cycles: 1_000,
        window_cycles: 5_000,
        max_run_cycles: 50_000,
    };
    let plan = RunRequest::new(MachineConfig::generic(2))
        .benchmarks([catalog::ep().scaled(0.01), catalog::cg_mpi().scaled(0.2)])
        .levels([SmtLevel::Smt1])
        .protocol(protocol)
        .plan()
        .expect("valid plan");
    let sweep = Engine::new().with_cache(ResultCache::new(&dir)).run(&plan);

    assert_eq!(sweep.errors.len(), 1, "exactly one job fails");
    match &sweep.errors[0] {
        JobError::Incomplete {
            benchmark,
            level,
            measurement,
        } => {
            assert_eq!(benchmark, "CG_MPI");
            assert_eq!(*level, SmtLevel::Smt1);
            assert!(!measurement.completed);
            assert!(measurement.cycles >= 50_000);
        }
        other => panic!("expected Incomplete, got {other}"),
    }
    assert_eq!(sweep.metrics.jobs_failed, 1);

    // The healthy benchmark is fully measured...
    assert_eq!(sweep.results.len(), 2);
    let ep = &sweep.results[0];
    assert_eq!(ep.name, "EP");
    assert!(ep.levels[&SmtLevel::Smt1].completed);
    // ...the failed one appears with no measurement at the failed level...
    assert!(sweep.results[1].level(SmtLevel::Smt1).is_err());
    // ...and the failure was not persisted, so a rerun retries it.
    assert_eq!(
        ResultCache::new(&dir).len(),
        1,
        "only the completed job is cached"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Collects outcomes so tests can assert what the engine reported.
#[derive(Default)]
struct RecordingSink {
    started: Mutex<Vec<usize>>,
    outcomes: Mutex<Vec<(String, JobOutcome)>>,
    finished: Mutex<Vec<usize>>,
}

impl ProgressSink for RecordingSink {
    fn on_event(&self, event: &ProgressEvent<'_>) {
        match event {
            ProgressEvent::SweepStarted { jobs_total } => {
                self.started.lock().unwrap().push(*jobs_total);
            }
            ProgressEvent::JobFinished {
                benchmark, outcome, ..
            } => {
                self.outcomes
                    .lock()
                    .unwrap()
                    .push((benchmark.to_string(), *outcome));
            }
            ProgressEvent::SweepFinished { metrics } => {
                self.finished.lock().unwrap().push(metrics.jobs_total);
            }
        }
    }
}

#[test]
fn progress_sink_sees_every_job() {
    let dir = tmp_dir("progress");
    let sink = std::sync::Arc::new(RecordingSink::default());
    let engine = Engine::new()
        .with_cache(ResultCache::new(&dir))
        .progress(sink.clone());
    let plan = tiny_plan();

    engine.run(&plan);
    assert_eq!(*sink.started.lock().unwrap(), vec![4]);
    assert_eq!(*sink.finished.lock().unwrap(), vec![4]);
    {
        let outcomes = sink.outcomes.lock().unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|(_, o)| *o == JobOutcome::Computed));
    }

    engine.run(&plan);
    let outcomes = sink.outcomes.lock().unwrap();
    assert_eq!(outcomes.len(), 8);
    assert!(outcomes[4..]
        .iter()
        .all(|(_, o)| *o == JobOutcome::CacheHit));
    let _ = std::fs::remove_dir_all(&dir);
}
