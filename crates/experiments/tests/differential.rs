//! Differential proof for the fast-forward stepper: over catalog
//! workloads × SMT levels × machines, [`Stepping::FastForward`] must
//! produce **bit-identical** per-thread and core counter snapshots,
//! completion cycles, and work totals to the naive one-cycle-at-a-time
//! reference — the acceptance bar that lets every figure in the repo run
//! on the optimized stepper without re-validating the science.

use proptest::prelude::*;
use smt_sim::{
    CoreCounters, MachineConfig, RunResult, Simulation, SmtLevel, Stepping, ThreadCounters,
};
use smt_workloads::{catalog, SyntheticWorkload, WorkloadSpec};

/// Cycle cap: generous enough that every scaled-down case completes.
const MAX_CYCLES: u64 = 4_000_000;

/// One end-state snapshot, containing everything an experiment can
/// observe from a finished simulation.
#[derive(Debug, PartialEq)]
struct Snapshot {
    result: RunResult,
    now: u64,
    per_thread: Vec<ThreadCounters>,
    cores: CoreCounters,
    skipped: u64,
}

fn run_with(
    cfg: &MachineConfig,
    smt: SmtLevel,
    spec: &WorkloadSpec,
    stepping: Stepping,
) -> Snapshot {
    let mut sim = Simulation::new(cfg.clone(), smt, SyntheticWorkload::new(spec.clone()));
    sim.set_stepping(stepping);
    let result = sim.run_until_finished(MAX_CYCLES);
    Snapshot {
        result,
        now: sim.now(),
        per_thread: sim.thread_counters().to_vec(),
        cores: sim.core_counters(),
        skipped: sim.idle_cycles_skipped(),
    }
}

/// A POWER7-style core pair: exercises SMT4, dynamic partitioning, and
/// the multi-queue issue topology without the full 8-core machine cost.
fn small_power7() -> MachineConfig {
    let mut cfg = MachineConfig::power7(1);
    cfg.cores_per_chip = 2;
    cfg
}

/// The differential case matrix: machines spanning every descriptor
/// family (generic single-queue, POWER7 multi-queue/dynamic-partitioned,
/// Nehalem store-pair ports) × workloads spanning every synchronization
/// and memory regime in the catalog.
fn machines() -> Vec<(MachineConfig, SmtLevel)> {
    vec![
        (MachineConfig::generic(1), SmtLevel::Smt1),
        (MachineConfig::generic(2), SmtLevel::Smt2),
        (small_power7(), SmtLevel::Smt4),
        (small_power7(), SmtLevel::Smt2),
        (MachineConfig::nehalem(), SmtLevel::Smt2),
    ]
}

fn specs() -> Vec<WorkloadSpec> {
    vec![
        catalog::ep().scaled(0.004),               // compute-bound
        catalog::stream().scaled(0.004),           // memory-bound (long stalls)
        catalog::specjbb_contention().scaled(0.2), // lock contention (sleeps)
        catalog::mg().scaled(0.004),               // barriers + memory
        catalog::blackscholes().scaled(0.004),     // mixed parallel
        catalog::specjbb().scaled(0.1),            // rate-limited (idle gaps)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]
    #[test]
    fn fast_forward_matches_naive_bit_for_bit(
        machine_idx in 0usize..5,
        spec_idx in 0usize..6,
    ) {
        let (cfg, smt) = machines().swap_remove(machine_idx);
        let spec = specs().swap_remove(spec_idx);
        let naive = run_with(&cfg, smt, &spec, Stepping::Naive);
        let fast = run_with(&cfg, smt, &spec, Stepping::FastForward);
        prop_assert!(naive.result.completed, "naive run hit the cycle cap");
        prop_assert_eq!(naive.skipped, 0);
        prop_assert_eq!(&naive.result, &fast.result);
        prop_assert_eq!(naive.now, fast.now);
        prop_assert_eq!(&naive.cores, &fast.cores);
        prop_assert_eq!(&naive.per_thread, &fast.per_thread);
    }
}

/// The equivalence must also hold mid-run, where experiments read
/// counters through sampling windows rather than at completion.
#[test]
fn windowed_counters_match_naive() {
    let cfg = small_power7();
    let spec = catalog::stream().scaled(0.01);
    let mut naive = Simulation::new(
        cfg.clone(),
        SmtLevel::Smt4,
        SyntheticWorkload::new(spec.clone()),
    );
    naive.set_stepping(Stepping::Naive);
    let mut fast = Simulation::new(cfg, SmtLevel::Smt4, SyntheticWorkload::new(spec));
    for _ in 0..4 {
        let a = naive.measure_window(5_000);
        let b = fast.measure_window(5_000);
        assert_eq!(a.wall_cycles, b.wall_cycles);
        assert_eq!(a.per_thread, b.per_thread);
        assert_eq!(a.cores, b.cores);
    }
    assert_eq!(naive.now(), fast.now());
}

/// The fast path must actually engage on stall-heavy work — otherwise
/// the differential proof is vacuous.
#[test]
fn fast_forward_skips_cycles_on_stalled_work() {
    let spec = catalog::specjbb_contention().scaled(0.3);
    let mut sim = Simulation::new(
        MachineConfig::generic(1),
        SmtLevel::Smt1,
        SyntheticWorkload::new(spec),
    );
    let res = sim.run_until_finished(MAX_CYCLES);
    assert!(res.completed);
    assert!(
        sim.idle_cycles_skipped() > 0,
        "expected fast-forward jumps on a contended workload"
    );
}
