//! Differential proof for the simulator's optimized hot paths: over
//! catalog workloads × SMT levels × machines, every combination of
//! [`Stepping::FastForward`], the SoA bitset issue engine, and the SIMD
//! scan kernel must produce **bit-identical** per-thread and core counter
//! snapshots, completion cycles, and work totals to the naive,
//! legacy-engine one-cycle-at-a-time reference — the acceptance bar that
//! lets every figure in the repo run on the optimized paths without
//! re-validating the science.

use proptest::prelude::*;
use smt_sim::{
    simd_available, CoreCounters, IssueEngine, MachineConfig, RunResult, ScanKernel, Simulation,
    SmtLevel, Stepping, ThreadCounters,
};
use smt_workloads::{catalog, SyntheticWorkload, WorkloadSpec};

/// Cycle cap: generous enough that every scaled-down case completes.
const MAX_CYCLES: u64 = 4_000_000;

/// One end-state snapshot, containing everything an experiment can
/// observe from a finished simulation.
#[derive(Debug, PartialEq)]
struct Snapshot {
    result: RunResult,
    now: u64,
    per_thread: Vec<ThreadCounters>,
    cores: CoreCounters,
    skipped: u64,
}

fn run_with(
    cfg: &MachineConfig,
    smt: SmtLevel,
    spec: &WorkloadSpec,
    stepping: Stepping,
) -> Snapshot {
    run_engine(cfg, smt, spec, stepping, None, None)
}

fn run_engine(
    cfg: &MachineConfig,
    smt: SmtLevel,
    spec: &WorkloadSpec,
    stepping: Stepping,
    engine: Option<IssueEngine>,
    kernel: Option<ScanKernel>,
) -> Snapshot {
    let mut sim = Simulation::new(cfg.clone(), smt, SyntheticWorkload::new(spec.clone()));
    sim.set_stepping(stepping);
    if let Some(engine) = engine {
        sim.set_issue_engine(engine);
    }
    if let Some(kernel) = kernel {
        sim.set_scan_kernel(kernel);
    }
    let result = sim.run_until_finished(MAX_CYCLES);
    Snapshot {
        result,
        now: sim.now(),
        per_thread: sim.thread_counters().to_vec(),
        cores: sim.core_counters(),
        skipped: sim.idle_cycles_skipped(),
    }
}

/// A POWER7-style core pair: exercises SMT4, dynamic partitioning, and
/// the multi-queue issue topology without the full 8-core machine cost.
fn small_power7() -> MachineConfig {
    let mut cfg = MachineConfig::power7(1);
    cfg.cores_per_chip = 2;
    cfg
}

/// The differential case matrix: machines spanning every descriptor
/// family (generic single-queue, POWER7 multi-queue/dynamic-partitioned,
/// Nehalem store-pair ports) × workloads spanning every synchronization
/// and memory regime in the catalog.
fn machines() -> Vec<(MachineConfig, SmtLevel)> {
    vec![
        (MachineConfig::generic(1), SmtLevel::Smt1),
        (MachineConfig::generic(2), SmtLevel::Smt2),
        (small_power7(), SmtLevel::Smt4),
        (small_power7(), SmtLevel::Smt2),
        (MachineConfig::nehalem(), SmtLevel::Smt2),
    ]
}

fn specs() -> Vec<WorkloadSpec> {
    vec![
        catalog::ep().scaled(0.004),               // compute-bound
        catalog::stream().scaled(0.004),           // memory-bound (long stalls)
        catalog::specjbb_contention().scaled(0.2), // lock contention (sleeps)
        catalog::mg().scaled(0.004),               // barriers + memory
        catalog::blackscholes().scaled(0.004),     // mixed parallel
        catalog::specjbb().scaled(0.1),            // rate-limited (idle gaps)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]
    #[test]
    fn fast_forward_matches_naive_bit_for_bit(
        machine_idx in 0usize..5,
        spec_idx in 0usize..6,
    ) {
        let (cfg, smt) = machines().swap_remove(machine_idx);
        let spec = specs().swap_remove(spec_idx);
        let naive = run_with(&cfg, smt, &spec, Stepping::Naive);
        let fast = run_with(&cfg, smt, &spec, Stepping::FastForward);
        prop_assert!(naive.result.completed, "naive run hit the cycle cap");
        prop_assert_eq!(naive.skipped, 0);
        prop_assert_eq!(&naive.result, &fast.result);
        prop_assert_eq!(naive.now, fast.now);
        prop_assert_eq!(&naive.cores, &fast.cores);
        prop_assert_eq!(&naive.per_thread, &fast.per_thread);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]
    /// The tentpole differential: SoA bitset engine × stepping × machine
    /// × workload, all judged against the legacy-engine naive-stepper
    /// reference. Covers both the scalar-u64 kernel (forced) and, where
    /// the host supports it, the auto-dispatched AVX2 kernel.
    #[test]
    fn soa_engine_matches_legacy_reference_bit_for_bit(
        machine_idx in 0usize..5,
        spec_idx in 0usize..6,
        fast_forward in any::<bool>(),
        force_scalar in any::<bool>(),
    ) {
        let (cfg, smt) = machines().swap_remove(machine_idx);
        let spec = specs().swap_remove(spec_idx);
        let stepping = if fast_forward { Stepping::FastForward } else { Stepping::Naive };
        let kernel = if force_scalar { Some(ScanKernel::ScalarU64) } else { None };
        let reference = run_engine(&cfg, smt, &spec, Stepping::Naive, Some(IssueEngine::Legacy), None);
        let soa = run_engine(&cfg, smt, &spec, stepping, Some(IssueEngine::Soa), kernel);
        prop_assert!(reference.result.completed, "reference run hit the cycle cap");
        prop_assert_eq!(&reference.result, &soa.result);
        prop_assert_eq!(reference.now, soa.now);
        prop_assert_eq!(&reference.cores, &soa.cores);
        prop_assert_eq!(&reference.per_thread, &soa.per_thread);
    }
}

/// Scalar-u64 and AVX2 scan kernels must agree exactly; skipped (trivially
/// green) on hosts without AVX2, where [`ScanKernel::Simd`] cannot run.
#[test]
fn simd_kernel_matches_scalar_kernel() {
    if !simd_available() {
        eprintln!("skipping: AVX2 unavailable on this host");
        return;
    }
    for (cfg, smt) in machines() {
        let spec = catalog::stream().scaled(0.004);
        let scalar = run_engine(
            &cfg,
            smt,
            &spec,
            Stepping::FastForward,
            Some(IssueEngine::Soa),
            Some(ScanKernel::ScalarU64),
        );
        let simd = run_engine(
            &cfg,
            smt,
            &spec,
            Stepping::FastForward,
            Some(IssueEngine::Soa),
            Some(ScanKernel::Simd),
        );
        assert!(scalar.result.completed);
        assert_eq!(scalar.result, simd.result);
        assert_eq!(scalar.now, simd.now);
        assert_eq!(scalar.cores, simd.cores);
        assert_eq!(scalar.per_thread, simd.per_thread);
    }
}

/// The equivalence must also hold mid-run, where experiments read
/// counters through sampling windows rather than at completion.
#[test]
fn windowed_counters_match_naive() {
    let cfg = small_power7();
    let spec = catalog::stream().scaled(0.01);
    let mut naive = Simulation::new(
        cfg.clone(),
        SmtLevel::Smt4,
        SyntheticWorkload::new(spec.clone()),
    );
    naive.set_stepping(Stepping::Naive);
    let mut fast = Simulation::new(cfg, SmtLevel::Smt4, SyntheticWorkload::new(spec));
    for _ in 0..4 {
        let a = naive.measure_window(5_000);
        let b = fast.measure_window(5_000);
        assert_eq!(a.wall_cycles, b.wall_cycles);
        assert_eq!(a.per_thread, b.per_thread);
        assert_eq!(a.cores, b.cores);
    }
    assert_eq!(naive.now(), fast.now());
}

/// Engine equivalence must also hold through sampling windows: the SoA
/// engine's wakeup/parking bookkeeping may not shift counters even at
/// arbitrary mid-run observation points.
#[test]
fn windowed_counters_match_across_engines() {
    let cfg = small_power7();
    let spec = catalog::specjbb_contention().scaled(0.2);
    let mk = |engine: IssueEngine| {
        let mut sim = Simulation::new(
            cfg.clone(),
            SmtLevel::Smt4,
            SyntheticWorkload::new(spec.clone()),
        );
        sim.set_issue_engine(engine);
        sim
    };
    let mut legacy = mk(IssueEngine::Legacy);
    let mut soa = mk(IssueEngine::Soa);
    for _ in 0..4 {
        let a = legacy.measure_window(5_000);
        let b = soa.measure_window(5_000);
        assert_eq!(a.wall_cycles, b.wall_cycles);
        assert_eq!(a.per_thread, b.per_thread);
        assert_eq!(a.cores, b.cores);
    }
    assert_eq!(legacy.now(), soa.now());
}

/// The fast path must actually engage on stall-heavy work — otherwise
/// the differential proof is vacuous.
#[test]
fn fast_forward_skips_cycles_on_stalled_work() {
    let spec = catalog::specjbb_contention().scaled(0.3);
    let mut sim = Simulation::new(
        MachineConfig::generic(1),
        SmtLevel::Smt1,
        SyntheticWorkload::new(spec),
    );
    let res = sim.run_until_finished(MAX_CYCLES);
    assert!(res.completed);
    assert!(
        sim.idle_cycles_skipped() > 0,
        "expected fast-forward jumps on a contended workload"
    );
}
