//! Acceptance: a recorded trace replays **bit-identically** — the same
//! windows, the same metric sequence through `OnlineSampler`, and the
//! same recommendation sequence through a live `smtd` session as the
//! original collection produced.

use std::time::Duration;

use smt_select::prelude::*;
use smt_select::service;
use smt_sim::Error;

fn record_session(
    path: &std::path::Path,
    window_cycles: u64,
) -> Result<(Vec<WindowMeasurement>, CollectReport), Error> {
    let cfg = MachineConfig::power7(1);
    let top = *cfg.smt_levels().last().expect("levels");
    let sim = Simulation::new(
        cfg.clone(),
        top,
        SyntheticWorkload::new(catalog::ep().scaled(3.0)),
    );
    let backend = SimBackend::new("ep", sim).warmup(25_000);
    let mut collector = Collector::new(Box::new(backend)).record_to(
        path,
        TraceMeta {
            machine: "p7".to_string(),
            nports: cfg.arch.num_ports(),
            window_cycles,
        },
    )?;
    let windows = collector.collect(10, window_cycles)?;
    let report = collector.finish()?;
    Ok((windows, report))
}

#[test]
fn recorded_trace_replays_bit_identically() -> Result<(), Error> {
    let window_cycles = 20_000;
    let path = std::env::temp_dir().join("collect-replay-bits.smtc");
    let (live, report) = record_session(&path, window_cycles)?;
    assert!(live.len() >= 4, "only {} windows collected", live.len());
    assert_eq!(report.windows, live.len() as u64);
    assert_eq!(report.recorded_to.as_deref(), Some(path.to_str().unwrap()));

    // The trace holds exactly the live windows, bit for bit.
    let mut reader = TraceReader::open(&path)?;
    assert_eq!(reader.meta().machine, "p7");
    assert_eq!(reader.meta().window_cycles, window_cycles);
    assert_eq!(reader.declared_count(), Some(live.len() as u64));
    let replayed = reader.read_all()?;
    assert_eq!(replayed, live);

    // And the sampler sees identical metric values and factors from both.
    let spec = MetricSpec::power7();
    let mut sampler_live = OnlineSampler::new(spec, window_cycles, 0.5);
    let mut sampler_replay = OnlineSampler::new(spec, window_cycles, 0.5);
    for (a, b) in live.iter().zip(&replayed) {
        let (va, fa) = sampler_live.push_window(a);
        let (vb, fb) = sampler_replay.push_window(b);
        assert_eq!(va, vb);
        assert_eq!(fa, fb);
    }
    assert_eq!(sampler_live.current(), sampler_replay.current());

    std::fs::remove_file(&path).ok();
    Ok(())
}

#[test]
fn replay_matches_a_live_smtd_session() -> Result<(), Error> {
    let window_cycles = 20_000;
    let path = std::env::temp_dir().join("collect-replay-smtd.smtc");
    let (live, _report) = record_session(&path, window_cycles)?;
    assert!(live.len() >= 4);

    let handle = service::spawn(service::ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..service::ServerConfig::default()
    })?;
    let addr = handle.local_addr().to_string();
    let mut spec = SessionSpec::power7();
    spec.window_cycles = window_cycles;

    // Live path: stream the collected windows window-by-window.
    let mut live_client = Client::connect(&addr, Duration::from_secs(10))?;
    live_client.hello(&spec)?;
    let mut live_summaries = Vec::new();
    for w in &live {
        live_summaries.push(live_client.ingest(std::slice::from_ref(w))?);
    }
    let live_rec = live_client.recommend()?;

    // Replay path: a second session fed from the trace file.
    let mut replay_client = Client::connect(&addr, Duration::from_secs(10))?;
    replay_client.hello(&spec)?;
    let mut backend = TraceBackend::open(&path)?;
    let mut replay_summaries = Vec::new();
    while let Some(w) = backend.next_window(0)? {
        replay_summaries.push(replay_client.ingest(std::slice::from_ref(&w))?);
    }
    let replay_rec = replay_client.recommend()?;

    // Identical decision sequence and byte-identical final answer.
    assert_eq!(live_summaries, replay_summaries);
    assert_eq!(live_rec, replay_rec);
    let to_json = |r| serde_json::to_string(r).map_err(|e| Error::Serde(e.to_string()));
    assert_eq!(to_json(&live_rec)?, to_json(&replay_rec)?);

    // The batched streaming path converges on the same answer too.
    let mut stream_client = Client::connect(&addr, Duration::from_secs(10))?;
    stream_client.hello(&spec)?;
    let mut backend2 = TraceBackend::open(&path)?;
    let summary = stream_client.ingest_stream(WindowIter::new(&mut backend2, 0), 4)?;
    assert_eq!(
        summary.map(|s| s.total_windows),
        Some(live.len() as u64),
        "ingest_stream must deliver every recorded window"
    );
    assert_eq!(stream_client.recommend()?, live_rec);

    stream_client.shutdown()?;
    handle.join();
    std::fs::remove_file(&path).ok();
    Ok(())
}
