//! Property-based tests over the whole stack: arbitrary (sane) workload
//! specs and machine parameters must never wedge the simulator, lose work,
//! or produce out-of-range metric factors.

use proptest::prelude::*;
use smt_select::prelude::*;

fn arb_mix() -> impl Strategy<Value = InstrMix> {
    (
        0.01f64..1.0,
        0.01f64..1.0,
        0.01f64..1.0,
        0.0f64..0.3,
        0.01f64..1.0,
        0.01f64..1.0,
    )
        .prop_map(|(load, store, branch, cond_reg, fixed, vector)| {
            InstrMix {
                load,
                store,
                branch,
                cond_reg,
                fixed,
                vector,
            }
            .normalized()
        })
}

fn arb_sync() -> impl Strategy<Value = SyncSpec> {
    prop_oneof![
        Just(SyncSpec::None),
        (50u64..2000, 4u64..60).prop_map(|(i, c)| SyncSpec::SpinLock {
            cs_interval: i,
            cs_len: c
        }),
        (50u64..2000, 4u64..60, 10u64..80).prop_map(|(i, c, w)| SyncSpec::BlockingLock {
            cs_interval: i,
            cs_len: c,
            wake_latency: w
        }),
        (500u64..20_000, 0.0f64..0.5).prop_map(|(i, b)| SyncSpec::Barrier {
            interval: i,
            imbalance: b
        }),
        (0.02f64..0.5, 100u64..3000).prop_map(|(f, c)| SyncSpec::AmdahlSerial {
            serial_fraction: f,
            chunk: c
        }),
        (50u64..1000, 50u64..1000).prop_map(|(r, i)| SyncSpec::PeriodicIdle { run: r, idle: i }),
        (500u64..20_000).prop_map(|r| SyncSpec::RateLimited { work_per_kcycle: r }),
    ]
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        arb_mix(),
        0.5f64..1.0, // dep prob
        1u8..16,     // dep dist
        10u64..24,   // log2 working set (1 KiB .. 16 MiB)
        0.0f64..1.0, // locality
        prop_oneof![
            Just(AccessPattern::Random),
            (8u64..128).prop_map(AccessPattern::Strided)
        ],
        0.0f64..0.05, // mispredict rate
        arb_sync(),
        20_000u64..80_000, // total work
        any::<u64>(),      // seed
    )
        .prop_map(|(mix, dp, dd, ws, loc, pat, mis, sync, work, seed)| {
            let mut s = WorkloadSpec::new("prop", work);
            s.mix = mix;
            s.dep = DepProfile {
                prob: dp,
                max_dist: dd,
            };
            s.mem = MemBehavior::private(1 << ws, pat).with_locality(loc);
            s.branch_mispredict_rate = mis;
            s.sync = sync;
            s.seed = seed;
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any sane workload finishes on any machine at any level, emits
    /// exactly its declared work, and yields in-range metric factors.
    #[test]
    fn simulator_never_wedges_or_loses_work(spec in arb_spec(), level_sel in 0usize..3) {
        let cfg = MachineConfig::generic(2);
        let levels = cfg.smt_levels();
        let smt = levels[level_sel % levels.len()];
        let total = spec.total_work;
        let mut sim = Simulation::new(cfg.clone(), smt, SyntheticWorkload::new(spec));
        let res = sim.run_until_finished(300_000_000);
        prop_assert!(res.completed, "workload wedged at {smt}");
        prop_assert_eq!(res.work_done, total);

        let mspec = MetricSpec::for_arch(&cfg.arch);
        // Counters accumulated over the whole run are a valid "window".
        let window = sim.measure_window(1); // finished => empty delta is fine
        let f = smtsm_factors(&mspec, &window);
        prop_assert!(f.mix_deviation >= 0.0 && f.mix_deviation <= mspec.max_deviation() + 1e-9);
        prop_assert!((0.0..=1.0).contains(&f.disp_held));
        prop_assert!(f.scalability >= 1.0);
    }

    /// Reconfiguring mid-run never loses or duplicates work.
    #[test]
    fn reconfiguration_is_work_conserving(spec in arb_spec(), cut in 500u64..20_000) {
        let cfg = MachineConfig::generic(2);
        let total = spec.total_work;
        let mut sim = Simulation::new(cfg, SmtLevel::Smt2, SyntheticWorkload::new(spec));
        sim.run_cycles(cut);
        sim.reconfigure(SmtLevel::Smt1);
        sim.run_cycles(cut);
        sim.reconfigure(SmtLevel::Smt2);
        let res = sim.run_until_finished(300_000_000);
        prop_assert!(res.completed);
        prop_assert_eq!(res.work_done, total);
    }

    /// The same spec and seed always produce the same cycle count
    /// (bit-level determinism across runs).
    #[test]
    fn simulation_is_deterministic(spec in arb_spec()) {
        let cfg = MachineConfig::generic(2);
        let run = |s: WorkloadSpec| {
            let mut sim = Simulation::new(cfg.clone(), SmtLevel::Smt2, SyntheticWorkload::new(s));
            let r = sim.run_until_finished(300_000_000);
            (r.cycles, r.work_done)
        };
        let a = run(spec.clone());
        let b = run(spec);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Gini-trained thresholds never misclassify a linearly separable
    /// sample, regardless of where the gap lies.
    #[test]
    fn gini_threshold_separates_separable_samples(
        gap_low in 0.01f64..0.4,
        gap_width in 0.05f64..0.3,
        n_good in 2usize..12,
        n_bad in 2usize..12,
    ) {
        use smt_select::stats::classify::SpeedupCase;
        let mut cases = Vec::new();
        let mut max_good = 0.0f64;
        for k in 0..n_good {
            let m = gap_low * k as f64 / n_good as f64;
            max_good = max_good.max(m);
            cases.push(SpeedupCase::new(format!("g{k}"), m, 1.5));
        }
        let min_bad = gap_low + gap_width;
        for k in 0..n_bad {
            let m = min_bad + 0.3 * k as f64 / n_bad as f64;
            cases.push(SpeedupCase::new(format!("b{k}"), m, 0.5));
        }
        let p = ThresholdPredictor::train_gini(&cases);
        prop_assert_eq!(p.accuracy(&cases), 1.0);
        prop_assert!(
            p.threshold > max_good && p.threshold < min_bad + 1e-9,
            "threshold {} outside separating gap ({}, {})", p.threshold, max_good, min_bad
        );
    }

    /// PPI of a threshold above every metric is zero; below every metric it
    /// equals the mean improvement of switching everything down.
    #[test]
    fn ppi_extremes_are_consistent(speedups in proptest::collection::vec(0.2f64..2.5, 3..10)) {
        use smt_select::stats::classify::SpeedupCase;
        let cases: Vec<SpeedupCase> = speedups
            .iter()
            .enumerate()
            .map(|(k, &s)| SpeedupCase::new(format!("c{k}"), 0.1 + k as f64 * 0.01, s))
            .collect();
        let hi = PpiSweep::average_ppi(&cases, 10.0);
        prop_assert!(hi.abs() < 1e-12, "threshold above all metrics must yield 0");
        let lo = PpiSweep::average_ppi(&cases, 0.0);
        let expect: f64 = speedups.iter().map(|s| (1.0 / s - 1.0) * 100.0).sum::<f64>()
            / speedups.len() as f64;
        prop_assert!((lo - expect).abs() < 1e-9);
    }
}
