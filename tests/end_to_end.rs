//! End-to-end integration tests spanning all crates: workload catalog ->
//! simulator -> metric -> threshold -> prediction, on scaled-down versions
//! of the paper's experiments.

use smt_select::prelude::*;

/// Measure the metric at the top level plus the hi/lo speedup for one spec.
fn metric_and_speedup(
    cfg: &MachineConfig,
    wspec: &WorkloadSpec,
    top: SmtLevel,
    lo: SmtLevel,
) -> (f64, f64) {
    let mspec = MetricSpec::for_arch(&cfg.arch);
    // Full runs for ground truth.
    let mut hi_sim = Simulation::new(cfg.clone(), top, SyntheticWorkload::new(wspec.clone()));
    let hi = hi_sim.run_until_finished(500_000_000);
    assert!(hi.completed, "{} did not finish at {top}", wspec.name);
    let mut lo_sim = Simulation::new(cfg.clone(), lo, SyntheticWorkload::new(wspec.clone()));
    let lo_res = lo_sim.run_until_finished(500_000_000);
    assert!(lo_res.completed, "{} did not finish at {lo}", wspec.name);
    // Metric window on a fresh run at the top level.
    let mut m_sim = Simulation::new(cfg.clone(), top, SyntheticWorkload::new(wspec.clone()));
    let total = hi.cycles;
    m_sim.run_cycles((total / 5).clamp(1, 30_000));
    let window = m_sim.measure_window((total / 2).clamp(1, 60_000));
    (smtsm(&mspec, &window), hi.perf() / lo_res.perf())
}

#[test]
fn metric_separates_the_extremes_on_power7() {
    let cfg = MachineConfig::power7(1);
    let (m_good, s_good) = metric_and_speedup(
        &cfg,
        &catalog::ep().scaled(0.15),
        SmtLevel::Smt4,
        SmtLevel::Smt1,
    );
    let (m_bad, s_bad) = metric_and_speedup(
        &cfg,
        &catalog::specjbb_contention().scaled(0.15),
        SmtLevel::Smt4,
        SmtLevel::Smt1,
    );
    assert!(s_good > 1.2, "EP must gain from SMT4: {s_good}");
    assert!(s_bad < 0.8, "contention must lose at SMT4: {s_bad}");
    assert!(
        m_bad > m_good * 3.0,
        "metric must separate: good {m_good}, bad {m_bad}"
    );
}

#[test]
fn metric_orders_a_mini_suite_with_negative_correlation() {
    let cfg = MachineConfig::power7(1);
    let suite = [
        catalog::ep().scaled(0.1),
        catalog::blackscholes().scaled(0.1),
        catalog::mg().scaled(0.1),
        catalog::stream().scaled(0.1),
        catalog::ssca2().scaled(0.1),
        catalog::specjbb_contention().scaled(0.1),
    ];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for wspec in &suite {
        let (m, s) = metric_and_speedup(&cfg, wspec, SmtLevel::Smt4, SmtLevel::Smt1);
        xs.push(m);
        ys.push(s);
    }
    let r = smt_select::stats::corr::spearman(&xs, &ys).expect("defined");
    assert!(
        r < -0.5,
        "expected clear negative rank correlation, got {r}"
    );
}

#[test]
fn trained_threshold_predicts_the_mini_suite() {
    use smt_select::stats::classify::SpeedupCase;
    let cfg = MachineConfig::power7(1);
    let suite = [
        catalog::ep().scaled(0.1),
        catalog::bt().scaled(0.1),
        catalog::stream().scaled(0.1),
        catalog::ssca2().scaled(0.1),
        catalog::specjbb_contention().scaled(0.1),
    ];
    let cases: Vec<SpeedupCase> = suite
        .iter()
        .map(|w| {
            let (m, s) = metric_and_speedup(&cfg, w, SmtLevel::Smt4, SmtLevel::Smt1);
            SpeedupCase::new(w.name.clone(), m, s)
        })
        .collect();
    for trained in [
        ThresholdPredictor::train_gini(&cases),
        ThresholdPredictor::train_ppi(&cases),
    ] {
        assert!(
            trained.accuracy(&cases) >= 0.8,
            "{:?} trained badly: {}",
            trained.method,
            trained.accuracy(&cases)
        );
    }
}

#[test]
fn nehalem_machine_agrees_with_metric_spec_port_basis() {
    let cfg = MachineConfig::nehalem();
    let spec = MetricSpec::for_arch(&cfg.arch);
    assert_eq!(spec.num_ports, 6);
    let (m, s) = metric_and_speedup(
        &cfg,
        &catalog::ep().scaled(0.1),
        SmtLevel::Smt2,
        SmtLevel::Smt1,
    );
    assert!(s > 1.05, "EP gains on Nehalem too: {s}");
    assert!(m < 0.15, "EP metric small on Nehalem: {m}");
}

#[test]
fn dynamic_controller_tracks_oracle_on_a_phase_change() {
    let cfg = MachineConfig::power7(1);
    let make = || {
        PhasedWorkload::new(
            "itest-phases",
            vec![
                catalog::ep().scaled(0.08),
                catalog::specjbb_contention().scaled(0.08),
            ],
        )
    };
    let selector = LevelSelector::three_level(
        ThresholdPredictor::fixed(0.15),
        ThresholdPredictor::fixed(0.20),
    );
    let cmp = compare(
        &cfg,
        make,
        selector,
        ControllerConfig {
            window_cycles: 15_000,
            alpha: 0.6,
            hysteresis: 2,
            probe_interval: 10,
            phase_detect: true,
        },
        1_000_000_000,
    )
    .expect("policy comparison");
    assert!(cmp.dynamic.completed);
    assert!(
        cmp.dynamic.perf >= cmp.worst_static_perf(),
        "dynamic {:.3} must beat the worst static {:.3}",
        cmp.dynamic.perf,
        cmp.worst_static_perf()
    );
    assert!(
        cmp.dynamic_vs_oracle().expect("oracle perf") > 0.6,
        "dynamic too far from oracle: {:.2}",
        cmp.dynamic_vs_oracle().unwrap()
    );
    assert!(
        !cmp.dynamic.switches.is_empty(),
        "phase change must trigger at least one switch"
    );
}

#[test]
fn reconfiguration_preserves_work_accounting_across_crates() {
    let cfg = MachineConfig::power7(1);
    let wspec = catalog::fluidanimate().scaled(0.05);
    let total = wspec.total_work;
    let mut sim = Simulation::new(cfg, SmtLevel::Smt4, SyntheticWorkload::new(wspec));
    sim.run_cycles(5_000);
    sim.reconfigure(SmtLevel::Smt1);
    sim.run_cycles(5_000);
    sim.reconfigure(SmtLevel::Smt2);
    let res = sim.run_until_finished(500_000_000);
    assert!(res.completed);
    assert_eq!(
        res.work_done, total,
        "work lost or duplicated across switches"
    );
}

#[test]
fn naive_metrics_computable_for_every_catalog_entry() {
    // Smoke coverage: every catalog spec builds, runs briefly, and yields
    // finite metric/naive values at the top level.
    let cfg = MachineConfig::power7(1);
    let mspec = MetricSpec::for_arch(&cfg.arch);
    for wspec in catalog::power7_suite() {
        let w = SyntheticWorkload::new(wspec.scaled(0.02));
        let mut sim = Simulation::new(cfg.clone(), SmtLevel::Smt4, w);
        sim.run_cycles(3_000);
        let window = sim.measure_window(6_000);
        let v = smtsm(&mspec, &window);
        assert!(v.is_finite() && v >= 0.0);
        for nm in NaiveMetric::ALL {
            assert!(nm.value(&window).is_finite());
        }
    }
}
